#include "io/mmap_file.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <numeric>
#include <vector>

#include "io/platform.h"
#include "util/sys_info.h"

namespace m3::io {
namespace {

class MmapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_mmap_test_" +
           std::to_string(::getpid());
    ASSERT_TRUE(MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  // Creates a file with `count` doubles 0..count-1.
  std::string MakeDoubleFile(const std::string& name, size_t count) {
    std::vector<double> values(count);
    std::iota(values.begin(), values.end(), 0.0);
    const std::string path = Path(name);
    std::string bytes(reinterpret_cast<const char*>(values.data()),
                      count * sizeof(double));
    EXPECT_TRUE(WriteStringToFile(path, bytes).ok());
    return path;
  }

  std::string dir_;
};

TEST_F(MmapFileTest, MapReadOnlySeesFileContents) {
  const std::string path = MakeDoubleFile("ro.bin", 1000);
  auto mapped = MemoryMappedFile::Map(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const double* values = mapped.value().As<const double>();
  EXPECT_EQ(mapped.value().size(), 1000 * sizeof(double));
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_DOUBLE_EQ(values[i], static_cast<double>(i));
  }
}

TEST_F(MmapFileTest, MapMissingFileFails) {
  auto mapped = MemoryMappedFile::Map(Path("missing.bin"));
  EXPECT_FALSE(mapped.ok());
}

TEST_F(MmapFileTest, MapEmptyFileFails) {
  const std::string path = Path("empty.bin");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  auto mapped = MemoryMappedFile::Map(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(MmapFileTest, CreateAndMapWritesReachTheFile) {
  const std::string path = Path("rw.bin");
  const size_t kCount = 512;
  {
    auto mapped = MemoryMappedFile::CreateAndMap(path, kCount * sizeof(double));
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    double* values = mapped.value().As<double>();
    for (size_t i = 0; i < kCount; ++i) {
      values[i] = static_cast<double>(i) * 2.0;
    }
    ASSERT_TRUE(mapped.value().Sync().ok());
  }  // unmap
  // Re-open and verify persistence.
  auto reread = MemoryMappedFile::Map(path);
  ASSERT_TRUE(reread.ok());
  const double* values = reread.value().As<const double>();
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_DOUBLE_EQ(values[i], static_cast<double>(i) * 2.0);
  }
}

TEST_F(MmapFileTest, ReadWriteModeModifiesExistingFile) {
  const std::string path = MakeDoubleFile("mod.bin", 16);
  {
    MemoryMappedFile::Options options;
    options.mode = MemoryMappedFile::Mode::kReadWrite;
    auto mapped = MemoryMappedFile::Map(path, options);
    ASSERT_TRUE(mapped.ok());
    mapped.value().As<double>()[3] = 99.0;
    ASSERT_TRUE(mapped.value().Sync().ok());
  }
  auto reread = MemoryMappedFile::Map(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_DOUBLE_EQ(reread.value().As<const double>()[3], 99.0);
}

TEST_F(MmapFileTest, PrivateModeDoesNotModifyFile) {
  const std::string path = MakeDoubleFile("cow.bin", 16);
  {
    MemoryMappedFile::Options options;
    options.mode = MemoryMappedFile::Mode::kPrivate;
    auto mapped = MemoryMappedFile::Map(path, options);
    ASSERT_TRUE(mapped.ok());
    mapped.value().As<double>()[3] = 99.0;
    EXPECT_DOUBLE_EQ(mapped.value().As<double>()[3], 99.0);
  }
  auto reread = MemoryMappedFile::Map(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_DOUBLE_EQ(reread.value().As<const double>()[3], 3.0);
}

TEST_F(MmapFileTest, MapAnonymousIsZeroed) {
  auto mapped = MemoryMappedFile::MapAnonymous(1 << 16);
  ASSERT_TRUE(mapped.ok());
  EXPECT_FALSE(mapped.value().file_backed());
  const char* bytes = mapped.value().As<const char>();
  for (size_t i = 0; i < mapped.value().size(); i += 4096) {
    ASSERT_EQ(bytes[i], 0);
  }
  mapped.value().As<char>()[0] = 'x';
  EXPECT_EQ(bytes[0], 'x');
}

TEST_F(MmapFileTest, AdviceVariantsSucceed) {
  const std::string path = MakeDoubleFile("adv.bin", 4096);
  auto mapped = MemoryMappedFile::Map(path).ValueOrDie();
  for (Advice advice : {Advice::kNormal, Advice::kRandom, Advice::kSequential,
                        Advice::kWillNeed}) {
    EXPECT_TRUE(mapped.Advise(advice).ok())
        << "advice=" << AdviceToString(advice);
  }
  EXPECT_TRUE(mapped.Prefetch(0, 4096).ok());
}

TEST_F(MmapFileTest, AdviseRangeBeyondMappingIsOutOfRange) {
  const std::string path = MakeDoubleFile("advr.bin", 16);
  auto mapped = MemoryMappedFile::Map(path).ValueOrDie();
  util::Status st = mapped.AdviseRange(Advice::kWillNeed, 1 << 20, 10);
  EXPECT_EQ(st.code(), util::StatusCode::kOutOfRange);
}

TEST_F(MmapFileTest, ResidencyDropsAfterEvict) {
  if (!GetPlatformCapabilities().mincore_tracks_eviction) {
    GTEST_SKIP() << "kernel fakes mincore residency (sandbox)";
  }
  // 4 MiB file: touch everything, then evict and compare mincore counts.
  const size_t kBytes = 4 << 20;
  const std::string path = Path("evict.bin");
  {
    auto created = MemoryMappedFile::CreateAndMap(path, kBytes).ValueOrDie();
    std::memset(created.mutable_data(), 0xAB, kBytes);
    ASSERT_TRUE(created.Sync().ok());
  }
  auto mapped = MemoryMappedFile::Map(path).ValueOrDie();
  mapped.TouchAllPages();
  const uint64_t resident_before =
      mapped.CountResidentPages(0, kBytes).ValueOrDie();
  EXPECT_GT(resident_before, 0u);
  ASSERT_TRUE(mapped.Evict(0, kBytes).ok());
  const uint64_t resident_after =
      mapped.CountResidentPages(0, kBytes).ValueOrDie();
  EXPECT_LT(resident_after, resident_before);
}

TEST_F(MmapFileTest, TouchAllPagesChecksumStable) {
  const std::string path = MakeDoubleFile("touch.bin", 2048);
  auto mapped = MemoryMappedFile::Map(path).ValueOrDie();
  EXPECT_EQ(mapped.TouchAllPages(), mapped.TouchAllPages());
}

TEST_F(MmapFileTest, ResidentFractionBetweenZeroAndOne) {
  const std::string path = MakeDoubleFile("frac.bin", 4096);
  auto mapped = MemoryMappedFile::Map(path).ValueOrDie();
  mapped.TouchAllPages();
  const double frac = mapped.ResidentFraction().ValueOrDie();
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
}

TEST_F(MmapFileTest, MoveTransfersMapping) {
  const std::string path = MakeDoubleFile("move.bin", 16);
  auto mapped = MemoryMappedFile::Map(path).ValueOrDie();
  const void* addr = mapped.data();
  MemoryMappedFile moved = std::move(mapped);
  EXPECT_EQ(moved.data(), addr);
  EXPECT_FALSE(mapped.is_mapped());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(moved.is_mapped());
}

TEST_F(MmapFileTest, UnmapIsIdempotent) {
  const std::string path = MakeDoubleFile("unmap.bin", 16);
  auto mapped = MemoryMappedFile::Map(path).ValueOrDie();
  EXPECT_TRUE(mapped.Unmap().ok());
  EXPECT_FALSE(mapped.is_mapped());
  EXPECT_TRUE(mapped.Unmap().ok());
  EXPECT_EQ(mapped.Advise(Advice::kNormal).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(MmapFileTest, PopulateOptionPrefaults) {
  const std::string path = MakeDoubleFile("pop.bin", 1 << 16);
  MemoryMappedFile::Options options;
  options.populate = true;
  auto mapped = MemoryMappedFile::Map(path, options).ValueOrDie();
  // With MAP_POPULATE everything should already be resident. (On kernels
  // that fake mincore this still holds: they report all-resident.)
  EXPECT_DOUBLE_EQ(mapped.ResidentFraction().ValueOrDie(), 1.0);
}

TEST_F(MmapFileTest, AdviceToStringNames) {
  EXPECT_EQ(AdviceToString(Advice::kSequential), "sequential");
  EXPECT_EQ(AdviceToString(Advice::kRandom), "random");
  EXPECT_EQ(AdviceToString(Advice::kDontNeed), "dontneed");
}

}  // namespace
}  // namespace m3::io
