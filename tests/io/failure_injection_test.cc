// Failure injection for the io substrate: every misuse or hostile input
// must come back as a clean Status, never UB or a crash.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "data/dataset.h"
#include "io/buffered_io.h"
#include "io/file.h"
#include "io/mmap_file.h"

namespace m3::io {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_fail_test_" +
           std::to_string(::getpid());
    ASSERT_TRUE(MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(FailureInjectionTest, OpenDirectoryAsFileFailsGracefully) {
  // Opening a directory read-only succeeds on POSIX, but reading must fail
  // cleanly; mapping it must fail cleanly too.
  auto mapped = MemoryMappedFile::Map(dir_);
  EXPECT_FALSE(mapped.ok());
}

TEST_F(FailureInjectionTest, WriteToReadOnlyFdFails) {
  const std::string path = Path("ro.bin");
  ASSERT_TRUE(WriteStringToFile(path, "data").ok());
  auto file = File::OpenReadOnly(path).ValueOrDie();
  util::Status st = file.WriteExactAt(0, "x", 1);
  EXPECT_EQ(st.code(), util::StatusCode::kIoError);
}

TEST_F(FailureInjectionTest, ResizeOnReadOnlyFdFails) {
  const std::string path = Path("ro2.bin");
  ASSERT_TRUE(WriteStringToFile(path, "data").ok());
  auto file = File::OpenReadOnly(path).ValueOrDie();
  EXPECT_FALSE(file.Resize(100).ok());
}

TEST_F(FailureInjectionTest, CreateInMissingDirectoryFails) {
  auto file = File::CreateTruncate(dir_ + "/no/such/dir/f.bin");
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), util::StatusCode::kIoError);
}

TEST_F(FailureInjectionTest, MapTruncatedToZeroWhileExpectingData) {
  const std::string path = Path("zero.bin");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  EXPECT_FALSE(MemoryMappedFile::Map(path).ok());
}

TEST_F(FailureInjectionTest, BufferedReaderOnDirectoryFails) {
  auto reader = BufferedReader::Open(dir_);
  if (reader.ok()) {
    // Some kernels allow opening directories; reading must still fail.
    char c;
    EXPECT_FALSE(reader.value().ReadExact(&c, 1).ok());
  }
}

TEST_F(FailureInjectionTest, DatasetHeaderWithHugeRowsRejected) {
  // Hand-craft a header whose claimed size exceeds the file: the reader
  // must flag truncation instead of trusting it.
  const std::string path = Path("huge.m3");
  {
    auto writer = data::DatasetWriter::Create(path, 4).ValueOrDie();
    la::Vector row(4, 1.0);
    ASSERT_TRUE(writer.AppendRow(row, 0.0).ok());
    ASSERT_TRUE(writer.Finalize(1).ok());
  }
  auto contents = ReadFileToString(path).ValueOrDie();
  // rows field lives at offset 8 (after magic+version); bump it sky-high.
  uint64_t huge = 1ull << 40;
  std::memcpy(contents.data() + 8, &huge, sizeof(huge));
  ASSERT_TRUE(WriteStringToFile(path, contents).ok());
  auto meta = data::ReadDatasetMeta(path);
  ASSERT_FALSE(meta.ok());
  EXPECT_EQ(meta.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(FailureInjectionTest, DatasetWriterSurvivesDiskPathRace) {
  // Finalize after the backing file was unlinked: header patch must fail
  // with IoError (the file is gone), not crash.
  const std::string path = Path("race.m3");
  auto writer = data::DatasetWriter::Create(path, 2).ValueOrDie();
  la::Vector row(2, 1.0);
  ASSERT_TRUE(writer.AppendRow(row, 0.0).ok());
  ASSERT_TRUE(RemoveFile(path).ok());
  util::Status st = writer.Finalize(1);
  EXPECT_FALSE(st.ok());
}

TEST_F(FailureInjectionTest, EvictOnAnonymousMappingIsHarmless) {
  auto mapped = MemoryMappedFile::MapAnonymous(1 << 16).ValueOrDie();
  mapped.As<char>()[0] = 'x';
  // No backing file: Evict must not crash, and the madvise part applies.
  EXPECT_TRUE(mapped.Evict(0, 1 << 16).ok());
}

TEST_F(FailureInjectionTest, StatusesCarryPathContext) {
  auto file = File::OpenReadOnly(Path("nope.bin"));
  ASSERT_FALSE(file.ok());
  EXPECT_NE(file.status().message().find("nope.bin"), std::string::npos)
      << "error should name the offending path: "
      << file.status().ToString();
}

}  // namespace
}  // namespace m3::io
