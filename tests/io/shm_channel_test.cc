// ShmChannel protocol suite: the fork-shared control block must sequence
// jobs exactly (startup barrier at seq 1, first real job at seq 2), carry
// payloads through the broadcast/slot regions with release/acquire
// ordering, and turn worker death into kDead (pipe EOF) and a hung worker
// into kTimeout — never a parent hang. Each test forks a real child so
// the cross-process semantics (MAP_SHARED atomics, fd inheritance and
// post-fork closing) are what is actually exercised.

#include "io/shm_channel.h"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstring>

#include "util/stopwatch.h"

namespace m3::io {
namespace {

ShmChannel::Options OneWorker() {
  ShmChannel::Options options;
  options.num_workers = 1;
  options.broadcast_bytes = 64;
  options.slot_bytes = {64};
  return options;
}

void ReapChild(pid_t pid) {
  int status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(pid, &status, 0);
  } while (reaped < 0 && errno == EINTR);
  ASSERT_EQ(reaped, pid);
}

TEST(ShmChannelTest, CreateValidatesOptions) {
  ShmChannel::Options options = OneWorker();
  options.num_workers = 0;
  EXPECT_FALSE(ShmChannel::Create(options).ok());

  options = OneWorker();
  options.num_workers = 65;  // > kMaxWorkers
  EXPECT_FALSE(ShmChannel::Create(options).ok());

  options = OneWorker();
  options.slot_bytes = {64, 64};  // one slot per worker, exactly
  EXPECT_FALSE(ShmChannel::Create(options).ok());
}

TEST(ShmChannelTest, JobRoundTripThroughForkedWorker) {
  auto channel = ShmChannel::Create(OneWorker()).ValueOrDie();

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    channel.OnWorkerAfterFork(0);
    channel.CompleteJob(0, 1, 0);  // startup ack
    uint64_t last_seen = 1;
    for (;;) {
      uint64_t seq = 0;
      uint64_t kind = 0;
      uint64_t payload_len = 0;
      if (!channel.AwaitJob(0, last_seen, &seq, &kind, &payload_len)) {
        ::_exit(10);  // parent died — not expected in this test
      }
      last_seen = seq;
      if (kind == ShmChannel::kJobShutdown) {
        channel.CompleteJob(0, seq, 0);
        ::_exit(0);
      }
      // Echo job: double the broadcast word into the slot.
      uint64_t value = 0;
      std::memcpy(&value, channel.broadcast(), sizeof(value));
      if (payload_len != sizeof(value)) {
        ::_exit(11);
      }
      value *= 2;
      std::memcpy(channel.slot(0), &value, sizeof(value));
      channel.CompleteJob(0, seq, sizeof(value));
    }
  }
  channel.OnParentAfterFork(0);

  // Startup barrier: the worker acks sequence 1 without a publish.
  ASSERT_EQ(channel.WaitWorker(0, 1, 10.0), ShmChannel::Wait::kDone);

  // Two sequenced echo jobs: payload ordering and slot lengths hold.
  for (const uint64_t value : {uint64_t{21}, uint64_t{1000}}) {
    std::memcpy(channel.broadcast(), &value, sizeof(value));
    const uint64_t seq = channel.PublishJob(7, sizeof(value));
    ASSERT_EQ(channel.WaitWorker(0, seq, 10.0), ShmChannel::Wait::kDone);
    EXPECT_EQ(channel.SlotLen(0), sizeof(uint64_t));
    uint64_t echoed = 0;
    std::memcpy(&echoed, channel.slot(0), sizeof(echoed));
    EXPECT_EQ(echoed, value * 2);
  }

  // Shutdown ack arrives even though the worker exits right after it
  // (the completion byte rides ahead of the POLLHUP).
  const uint64_t seq = channel.PublishJob(ShmChannel::kJobShutdown, 0);
  EXPECT_EQ(channel.WaitWorker(0, seq, 10.0), ShmChannel::Wait::kDone);
  ReapChild(pid);
}

TEST(ShmChannelTest, DeadWorkerIsEofNotATimeout) {
  auto channel = ShmChannel::Create(OneWorker()).ValueOrDie();

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    channel.OnWorkerAfterFork(0);
    channel.CompleteJob(0, 1, 0);
    ::_exit(0);  // die without ever serving a job
  }
  channel.OnParentAfterFork(0);
  ASSERT_EQ(channel.WaitWorker(0, 1, 10.0), ShmChannel::Wait::kDone);

  // The worker is gone: waiting must report kDead promptly via pipe EOF,
  // not sit out the (deliberately generous) deadline.
  const uint64_t seq = channel.PublishJob(7, 0);
  util::Stopwatch stopwatch;
  EXPECT_EQ(channel.WaitWorker(0, seq, 30.0), ShmChannel::Wait::kDead);
  EXPECT_LT(stopwatch.ElapsedSeconds(), 10.0);
  ReapChild(pid);
}

TEST(ShmChannelTest, HungWorkerHitsTheDeadline) {
  auto channel = ShmChannel::Create(OneWorker()).ValueOrDie();

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    channel.OnWorkerAfterFork(0);
    channel.CompleteJob(0, 1, 0);
    for (;;) {
      ::usleep(100000);  // hang: never serve the published job
    }
  }
  channel.OnParentAfterFork(0);
  ASSERT_EQ(channel.WaitWorker(0, 1, 10.0), ShmChannel::Wait::kDone);

  const uint64_t seq = channel.PublishJob(7, 0);
  util::Stopwatch stopwatch;
  EXPECT_EQ(channel.WaitWorker(0, seq, 0.3), ShmChannel::Wait::kTimeout);
  EXPECT_GE(stopwatch.ElapsedSeconds(), 0.3);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  ReapChild(pid);
}

TEST(ShmChannelTest, AwaitJobSeesParentDeathAsEof) {
  // Simulate the parent dying by destroying the parent-held command-pipe
  // ends: the child's AwaitJob must return false instead of blocking.
  auto channel = ShmChannel::Create(OneWorker()).ValueOrDie();

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    channel.OnWorkerAfterFork(0);
    channel.CompleteJob(0, 1, 0);
    uint64_t seq = 0;
    uint64_t kind = 0;
    uint64_t payload_len = 0;
    // No new job is ever published; the channel teardown in the parent
    // closes the command pipe and AwaitJob reports the orphaning.
    ::_exit(channel.AwaitJob(0, 1, &seq, &kind, &payload_len) ? 12 : 0);
  }
  channel.OnParentAfterFork(0);
  ASSERT_EQ(channel.WaitWorker(0, 1, 10.0), ShmChannel::Wait::kDone);

  {
    ShmChannel dropped = std::move(channel);  // closes every parent fd
  }
  int status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(pid, &status, 0);
  } while (reaped < 0 && errno == EINTR);
  ASSERT_EQ(reaped, pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ShmChannelTest, PublishToDeadWorkerDoesNotKillTheParent) {
  // The parent holds both command-pipe ends, so PublishJob after a worker
  // death must not raise SIGPIPE; the death surfaces on the wait side.
  auto channel = ShmChannel::Create(OneWorker()).ValueOrDie();

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    channel.OnWorkerAfterFork(0);
    channel.CompleteJob(0, 1, 0);
    ::_exit(0);
  }
  channel.OnParentAfterFork(0);
  ASSERT_EQ(channel.WaitWorker(0, 1, 10.0), ShmChannel::Wait::kDone);
  ReapChild(pid);  // fully gone before publishing

  const uint64_t seq = channel.PublishJob(7, 0);
  EXPECT_EQ(channel.WaitWorker(0, seq, 5.0), ShmChannel::Wait::kDead);
}

}  // namespace
}  // namespace m3::io
