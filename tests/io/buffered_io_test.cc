#include "io/buffered_io.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <numeric>
#include <vector>

namespace m3::io {
namespace {

class BufferedIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_bufio_test_" +
           std::to_string(::getpid());
    ASSERT_TRUE(MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(BufferedIoTest, WriteThenReadRoundTrip) {
  const std::string path = Path("rt.bin");
  std::vector<int32_t> values(10000);
  std::iota(values.begin(), values.end(), -5000);
  {
    auto writer = BufferedWriter::Create(path, 4096).ValueOrDie();
    for (int32_t v : values) {
      ASSERT_TRUE(writer.AppendValue(v).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }
  auto reader = BufferedReader::Open(path, 4096).ValueOrDie();
  for (int32_t expected : values) {
    auto v = reader.ReadValue<int32_t>();
    ASSERT_TRUE(v.ok());
    ASSERT_EQ(v.value(), expected);
  }
  EXPECT_TRUE(reader.AtEof());
}

TEST_F(BufferedIoTest, WritesLargerThanBufferArePreserved) {
  const std::string path = Path("big.bin");
  std::string blob(100000, 'q');
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<char>('a' + i % 26);
  }
  {
    auto writer = BufferedWriter::Create(path, 128).ValueOrDie();
    ASSERT_TRUE(writer.Append(blob.data(), blob.size()).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), blob);
}

TEST_F(BufferedIoTest, BytesWrittenIncludesBuffered) {
  auto writer = BufferedWriter::Create(Path("count.bin"), 1024).ValueOrDie();
  ASSERT_TRUE(writer.Append("abc", 3).ok());
  EXPECT_EQ(writer.bytes_written(), 3u);
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(writer.bytes_written(), 3u);
}

TEST_F(BufferedIoTest, FlushIsVisibleBeforeClose) {
  const std::string path = Path("flush.bin");
  auto writer = BufferedWriter::Create(path, 1024).ValueOrDie();
  ASSERT_TRUE(writer.Append("xyz", 3).ok());
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), "xyz");
  ASSERT_TRUE(writer.Close().ok());
}

TEST_F(BufferedIoTest, ReaderEofIsError) {
  const std::string path = Path("eof.bin");
  ASSERT_TRUE(WriteStringToFile(path, "ab").ok());
  auto reader = BufferedReader::Open(path).ValueOrDie();
  char buf[4];
  util::Status st = reader.ReadExact(buf, 4);
  EXPECT_EQ(st.code(), util::StatusCode::kIoError);
}

TEST_F(BufferedIoTest, SkipAdvancesPosition) {
  const std::string path = Path("skip.bin");
  ASSERT_TRUE(WriteStringToFile(path, "0123456789").ok());
  auto reader = BufferedReader::Open(path, 4).ValueOrDie();
  char c;
  ASSERT_TRUE(reader.ReadExact(&c, 1).ok());
  EXPECT_EQ(c, '0');
  ASSERT_TRUE(reader.Skip(5).ok());
  ASSERT_TRUE(reader.ReadExact(&c, 1).ok());
  EXPECT_EQ(c, '6');
  EXPECT_EQ(reader.position(), 7u);
}

TEST_F(BufferedIoTest, SkipBeyondEofIsOutOfRange) {
  const std::string path = Path("skip2.bin");
  ASSERT_TRUE(WriteStringToFile(path, "abc").ok());
  auto reader = BufferedReader::Open(path, 64).ValueOrDie();
  // Consume buffer first so Skip takes the buffered branch, then overshoot.
  char buf[3];
  ASSERT_TRUE(reader.ReadExact(buf, 3).ok());
  EXPECT_EQ(reader.Skip(10).code(), util::StatusCode::kOutOfRange);
}

TEST_F(BufferedIoTest, ZeroCapacityRejected) {
  EXPECT_FALSE(BufferedWriter::Create(Path("z.bin"), 0).ok());
  ASSERT_TRUE(WriteStringToFile(Path("z2.bin"), "x").ok());
  EXPECT_FALSE(BufferedReader::Open(Path("z2.bin"), 0).ok());
}

TEST_F(BufferedIoTest, FileSizeReported) {
  const std::string path = Path("fs.bin");
  ASSERT_TRUE(WriteStringToFile(path, "hello").ok());
  auto reader = BufferedReader::Open(path).ValueOrDie();
  EXPECT_EQ(reader.file_size(), 5u);
  EXPECT_FALSE(reader.AtEof());
}

}  // namespace
}  // namespace m3::io
