#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace m3::util {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedWork) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Submit([] {});
  f.get();
}

TEST(ThreadPoolTest, WaitBlocksUntilIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++done;
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&done] { ++done; });
    }
  }
  EXPECT_EQ(done.load(), 50);
}

// Construct/submit/destruct churn: the shutdown handshake (shutting_down_
// flag, drain-then-join) runs once per pool, so cycling many short-lived
// pools is what shakes out lost-wakeup and join races. Sizes stay small —
// this test runs under TSan in CI, where thread creation is ~10x pricier.
TEST(ThreadPoolTest, ConstructSubmitDestructChurn) {
  std::atomic<int> executed{0};
  int submitted = 0;
  for (int round = 0; round < 40; ++round) {
    ThreadPool pool(1 + round % 4);
    const int tasks = round % 5;  // includes submit-nothing rounds
    for (int t = 0; t < tasks; ++t) {
      pool.Submit([&executed] { ++executed; });
      ++submitted;
    }
    // No Wait(): the destructor must drain the queue itself.
  }
  EXPECT_EQ(executed.load(), submitted);
}

// Submitting from inside a worker task while the destructor is already
// draining is the nastiest legal interleaving: the self-submitted task was
// enqueued before the pool's own task finished, so it must still run.
TEST(ThreadPoolTest, SubmitFromWorkerDuringShutdownStillRuns) {
  std::atomic<int> executed{0};
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(2);
    pool.Submit([&pool, &executed] {
      pool.Submit([&executed] { ++executed; });
    });
    // Destructor races the outer task's Submit.
  }
  EXPECT_EQ(executed.load(), 20);
}

TEST(ParallelForTest, CoversEntireRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(
      0, hits.size(), 1,
      [&hits](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          ++hits[i];
        }
      },
      &pool);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, 1, [&called](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, RespectsGrainByRunningInline) {
  ThreadPool pool(4);
  // Range smaller than grain -> single inline chunk.
  std::atomic<int> chunks{0};
  ParallelFor(
      0, 10, 100, [&chunks](size_t, size_t) { ++chunks; }, &pool);
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ParallelForTest, SumMatchesSequential) {
  std::vector<int64_t> values(100000);
  std::iota(values.begin(), values.end(), 0);
  std::atomic<int64_t> parallel_sum{0};
  ParallelFor(0, values.size(), 1024, [&](size_t lo, size_t hi) {
    int64_t local = 0;
    for (size_t i = lo; i < hi; ++i) {
      local += values[i];
    }
    parallel_sum += local;
  });
  const int64_t expected =
      std::accumulate(values.begin(), values.end(), int64_t{0});
  EXPECT_EQ(parallel_sum.load(), expected);
}

TEST(ParallelForTest, UsesGlobalPoolWhenNullptr) {
  std::atomic<int> count{0};
  ParallelFor(0, 64, 1, [&count](size_t lo, size_t hi) {
    count += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(GlobalThreadPoolTest, SingletonAndSized) {
  ThreadPool& a = GlobalThreadPool();
  ThreadPool& b = GlobalThreadPool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

}  // namespace
}  // namespace m3::util
