#include "util/format.h"

#include <gtest/gtest.h>

namespace m3::util {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f s=%s", 3, 1.5, "hi"), "x=3 y=1.50 s=hi");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutputsAreNotTruncated) {
  std::string long_arg(5000, 'a');
  std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(HumanBytesTest, Units) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(17), "17 B");
  EXPECT_EQ(HumanBytes(1024), "1.00 KiB");
  EXPECT_EQ(HumanBytes(1536), "1.50 KiB");
  EXPECT_EQ(HumanBytes(1ULL << 20), "1.00 MiB");
  EXPECT_EQ(HumanBytes(1ULL << 30), "1.00 GiB");
  EXPECT_EQ(HumanBytes(190ULL << 30), "190.00 GiB");
}

TEST(HumanDurationTest, Units) {
  EXPECT_EQ(HumanDuration(5e-7), "0.5 us");
  EXPECT_EQ(HumanDuration(0.0035), "3.5 ms");
  EXPECT_EQ(HumanDuration(2.5), "2.50 s");
  EXPECT_EQ(HumanDuration(252.0), "4m12s");
}

TEST(StrSplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StrTrimTest, TrimsWhitespace) {
  EXPECT_EQ(StrTrim("  hi  "), "hi");
  EXPECT_EQ(StrTrim("\t\nx\r "), "x");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(ParseInt64Test, ValidAndInvalid) {
  EXPECT_EQ(ParseInt64("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt64("-17").ValueOrDie(), -17);
  EXPECT_EQ(ParseInt64(" 7 ").ValueOrDie(), 7);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("4.5").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").ValueOrDie(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").ValueOrDie(), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(ParseBoolTest, AcceptedSpellings) {
  EXPECT_TRUE(ParseBool("true").ValueOrDie());
  EXPECT_TRUE(ParseBool("YES").ValueOrDie());
  EXPECT_TRUE(ParseBool("1").ValueOrDie());
  EXPECT_FALSE(ParseBool("false").ValueOrDie());
  EXPECT_FALSE(ParseBool("off").ValueOrDie());
  EXPECT_FALSE(ParseBool("maybe").ok());
}

TEST(ParseSizeBytesTest, Suffixes) {
  EXPECT_EQ(ParseSizeBytes("64").ValueOrDie(), 64u);
  EXPECT_EQ(ParseSizeBytes("4k").ValueOrDie(), 4096u);
  EXPECT_EQ(ParseSizeBytes("8M").ValueOrDie(), 8ULL << 20);
  EXPECT_EQ(ParseSizeBytes("2g").ValueOrDie(), 2ULL << 30);
  EXPECT_EQ(ParseSizeBytes("1T").ValueOrDie(), 1ULL << 40);
  EXPECT_FALSE(ParseSizeBytes("-5m").ok());
  EXPECT_FALSE(ParseSizeBytes("k").ok());
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

}  // namespace
}  // namespace m3::util
