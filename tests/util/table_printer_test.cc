#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace m3::util {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  std::string text = t.ToText();
  // Header present, separator line present, rows present.
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  // All lines (except possibly last) share the column start of "value".
  const size_t header_col = text.find("value");
  const size_t row_col = text.find("22222");
  ASSERT_NE(header_col, std::string::npos);
  ASSERT_NE(row_col, std::string::npos);
  const size_t header_offset = header_col - text.rfind('\n', header_col) - 1;
  const size_t row_offset = row_col - text.rfind('\n', row_col) - 1;
  EXPECT_EQ(header_offset, row_offset);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"x,y", "q\"z"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n\"x,y\",\"q\"\"z\"\n");
}

TEST(TablePrinterTest, NumRows) {
  TablePrinter t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter t({"col1", "col2"});
  std::string text = t.ToText();
  EXPECT_NE(text.find("col1"), std::string::npos);
  EXPECT_EQ(t.ToCsv(), "col1,col2\n");
}

}  // namespace
}  // namespace m3::util
