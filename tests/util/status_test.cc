#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace m3::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::IoError("io").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotFound("nf").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("ae").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("oor").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("fp").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotSupported("ns").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("in").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("disk on fire").message(), "disk on fire");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("missing.bin").ToString(),
            "NotFound: missing.bin");
}

TEST(StatusTest, WithContextPrepends) {
  Status st = Status::IoError("read failed").WithContext("loading dataset");
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(st.message(), "loading dataset: read failed");
  // OK statuses pass through untouched.
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, IoErrorFromErrnoAppendsStrerror) {
  Status st = Status::IoErrorFromErrno("open", ENOENT);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("open: "), std::string::npos);
  EXPECT_NE(st.message().find("No such file"), std::string::npos);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::IoError("x"), Status::IoError("x"));
  EXPECT_NE(Status::IoError("x"), Status::IoError("y"));
  EXPECT_NE(Status::IoError("x"), Status::Internal("x"));
}

Status FailingOperation() { return Status::IoError("inner"); }

Status Propagates() {
  M3_RETURN_IF_ERROR(FailingOperation());
  return Status::Internal("should not reach");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  Status st = Propagates();
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(st.message(), "inner");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) {
    return Status::InvalidArgument("odd");
  }
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  M3_ASSIGN_OR_RETURN(int half, HalfOf(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status st = UseAssignOrReturn(3, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace m3::util
