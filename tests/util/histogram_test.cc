#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace m3::util {
namespace {

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 1.25);  // population variance
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  Rng rng(4);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(0, 10);
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.Variance(), all.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(5.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(HistogramTest, CountMeanMinMax) {
  Histogram h;
  for (double v : {0.001, 0.002, 0.003}) {
    h.Add(v);
  }
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.mean(), 0.002, 1e-12);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.003);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h;
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    h.Add(rng.Uniform(0.0, 1.0));
  }
  double prev = 0.0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    double value = h.Percentile(p);
    EXPECT_GE(value, prev);
    prev = value;
  }
  // Median of uniform(0,1) should be near 0.5 (bucket resolution is coarse).
  EXPECT_NEAR(h.Median(), 0.5, 0.15);
}

TEST(HistogramTest, PercentileBounds) {
  Histogram h;
  h.Add(2.0);
  h.Add(4.0);
  EXPECT_GE(h.Percentile(0), h.min());
  EXPECT_LE(h.Percentile(100), h.max());
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(1.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Add(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a, b;
  a.Add(0.5);
  b.Add(1.5);
  b.Add(2.5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 2.5);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(1.0);
  EXPECT_NE(h.ToString().find("count=1"), std::string::npos);
}

}  // namespace
}  // namespace m3::util
