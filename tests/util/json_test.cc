#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <string>

#include <unistd.h>

// The reporter under test lives with the benches; this test gets the repo
// root on its include path for exactly this header.
#include "bench/bench_common.h"
#include "io/file.h"

namespace m3::util {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("instance0_cached"), "instance0_cached");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("c:\\tmp"), "c:\\\\tmp");
}

TEST(JsonEscapeTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string("nul\x01") + "x"), "nul\\u0001x");
  EXPECT_EQ(JsonEscape("\r\b\f"), "\\r\\b\\f");
}

TEST(JsonEscapeTest, LeavesUtf8BytesAlone) {
  const std::string utf8 = "caf\xc3\xa9";
  EXPECT_EQ(JsonEscape(utf8), utf8);
}

TEST(JsonNumberTest, FormatsFiniteValues) {
  EXPECT_EQ(JsonNumber(1.5).ValueOrDie(), "1.500000");
  EXPECT_EQ(JsonNumber(0.0).ValueOrDie(), "0.000000");
  EXPECT_EQ(JsonNumber(-3.25).ValueOrDie(), "-3.250000");
}

TEST(JsonNumberTest, RejectsNonFinite) {
  EXPECT_FALSE(JsonNumber(std::numeric_limits<double>::quiet_NaN()).ok());
  EXPECT_FALSE(JsonNumber(std::numeric_limits<double>::infinity()).ok());
  EXPECT_FALSE(JsonNumber(-std::numeric_limits<double>::infinity()).ok());
}

// ---------------------------------------------------------------------------
// JsonReporter (bench/bench_common.h) end to end
// ---------------------------------------------------------------------------

class JsonReporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_json_test_" +
           std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(JsonReporterTest, WritesParseableJsonWithHostileNames) {
  bench::JsonReporter reporter("unit_test");
  io::ExecCounters exec;
  exec.passes = 2;
  exec.prefetches = 7;
  exec.prefetch_hits = 4;
  exec.stalls = 1;
  exec.stall_bytes = 4096;
  exec.prefetch_unclassified = 2;
  exec.backend_submits = 11;
  exec.backend_completions = 10;
  exec.backend_fallbacks = 5;
  reporter.Add("plain", 0.25, exec);
  reporter.Add("quote\"newline\n", 1.0, exec,
               {{"spill_refaults", 3}, {"weird\"key", 9}},
               {{"residual_seconds", -0.125}});
  ASSERT_TRUE(reporter.Write(dir_).ok());

  const std::string body =
      io::ReadFileToString(dir_ + "/BENCH_unit_test.json").ValueOrDie();
  // Raw quotes/newlines inside names would break any parser; the escaped
  // forms must appear instead.
  EXPECT_EQ(body.find("quote\"newline\n\""), std::string::npos);
  EXPECT_NE(body.find("quote\\\"newline\\n"), std::string::npos);
  EXPECT_NE(body.find("\"seconds\": 0.250000"), std::string::npos);
  EXPECT_NE(body.find("\"prefetch_unclassified\": 2"), std::string::npos);
  EXPECT_NE(body.find("\"backend_submits\": 11"), std::string::npos);
  EXPECT_NE(body.find("\"backend_completions\": 10"), std::string::npos);
  EXPECT_NE(body.find("\"backend_fallbacks\": 5"), std::string::npos);
  EXPECT_NE(body.find("\"spill_refaults\": 3"), std::string::npos);
  EXPECT_NE(body.find("\"weird\\\"key\": 9"), std::string::npos);
  EXPECT_NE(body.find("\"stall_bytes\": 4096"), std::string::npos);
  EXPECT_NE(body.find("\"residual_seconds\": -0.125"), std::string::npos);
  // Structural sanity: every unescaped quote is balanced (even count), and
  // braces/brackets match.
  size_t quotes = 0;
  int braces = 0, brackets = 0;
  for (size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (c == '"' && (i == 0 || body[i - 1] != '\\')) {
      ++quotes;
    }
    braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
    brackets += c == '[' ? 1 : (c == ']' ? -1 : 0);
  }
  EXPECT_EQ(quotes % 2, 0u);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(JsonReporterTest, RefusesNonFiniteSeconds) {
  bench::JsonReporter reporter("bad_bench");
  io::ExecCounters exec;
  reporter.Add("fine", 1.0, exec);
  reporter.Add("poison", std::numeric_limits<double>::quiet_NaN(), exec);
  const util::Status status = reporter.Write(dir_);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("poison"), std::string::npos);
  // Nothing half-written on disk.
  EXPECT_FALSE(io::FileExists(dir_ + "/BENCH_bad_bench.json"));
}

TEST_F(JsonReporterTest, RefusesNonFiniteExtraDouble) {
  bench::JsonReporter reporter("bad_fit");
  io::ExecCounters exec;
  reporter.Add("fit", 1.0, exec, {},
               {{"relative_residual",
                 std::numeric_limits<double>::infinity()}});
  const util::Status status = reporter.Write(dir_);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("relative_residual"), std::string::npos);
  EXPECT_FALSE(io::FileExists(dir_ + "/BENCH_bad_fit.json"));
}

TEST_F(JsonReporterTest, OutputParsesAndBothOverloadsShareOnePath) {
  // Both Add overloads render "exec" through PipelineStats::ToJson(); the
  // document they produce must survive the strict parser, and the
  // stats overload must land the stall/compute percentiles in the JSON.
  bench::JsonReporter reporter("stats_path");
  io::ExecCounters exec;
  exec.passes = 1;
  exec.prefetches = 4;
  exec.prefetch_hits = 3;
  exec.stalls = 1;
  reporter.Add("counters_only", 0.5, exec);

  exec::PipelineStats stats = exec::PipelineStats::FromCounters(exec);
  stats.drive_seconds = 0.5;
  stats.compute_duration.Add(0.002);
  stats.compute_duration.Add(0.004);
  stats.stall_duration.Add(0.010);
  reporter.Add("with_stats", 0.5, stats);
  ASSERT_TRUE(reporter.Write(dir_).ok());

  const std::string body =
      io::ReadFileToString(dir_ + "/BENCH_stats_path.json").ValueOrDie();
  auto doc = JsonParse(body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* cases = doc.value().Find("cases");
  ASSERT_NE(cases, nullptr);
  ASSERT_TRUE(cases->is_array());
  ASSERT_EQ(cases->array.size(), 2u);

  // The counters-only case lifts into a stats value: same keys, zeroed
  // durations.
  const JsonValue* lifted = cases->array[0].Find("exec");
  ASSERT_NE(lifted, nullptr);
  EXPECT_EQ(lifted->NumberOr("prefetch_hits", -1), 3.0);
  EXPECT_EQ(lifted->NumberOr("stall_p99", -1), 0.0);
  EXPECT_EQ(lifted->NumberOr("drive_seconds", -1), 0.0);

  const JsonValue* full = cases->array[1].Find("exec");
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(full->NumberOr("stalls", -1), 1.0);
  EXPECT_NEAR(full->NumberOr("drive_seconds", -1), 0.5, 1e-12);
  EXPECT_NEAR(full->NumberOr("stall_p50", -1), 0.010, 1e-4);
  EXPECT_NEAR(full->NumberOr("compute_p99", -1), 0.004, 1e-4);
  EXPECT_GE(full->NumberOr("compute_p95", -1),
            full->NumberOr("compute_p50", -1));
}

TEST_F(JsonReporterTest, EmptyReporterStillWritesValidDocument) {
  bench::JsonReporter reporter("empty");
  ASSERT_TRUE(reporter.Write(dir_).ok());
  const std::string body =
      io::ReadFileToString(dir_ + "/BENCH_empty.json").ValueOrDie();
  EXPECT_EQ(body, "{\"bench\": \"empty\", \"cases\": []}\n");
}

}  // namespace
}  // namespace m3::util
