#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace m3::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(42);
  std::vector<int> counts(10, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.UniformInt(uint64_t{10})];
  }
  // Each bucket should be within 10% of expected.
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / 10, kSamples / 100);
  }
}

TEST(RngTest, UniformIntSignedRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values appear in 1000 draws
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(99);
  const int kSamples = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kSamples; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(3);
  const int kSamples = 100000;
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.Gaussian(10.0, 2.0);
  }
  EXPECT_NEAR(sum / kSamples, 10.0, 0.05);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(13);
  auto perm = rng.Permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::vector<size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(sorted[i], i);
  }
  // Overwhelmingly likely not identity.
  EXPECT_NE(perm, sorted);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(1);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(55);
  Rng child = parent.Fork();
  // The child stream differs from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace m3::util
