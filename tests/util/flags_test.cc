#include "util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace m3::util {
namespace {

// Builds a mutable argv from string literals.
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args)
      : storage_(std::move(args)) {
    for (auto& s : storage_) {
      ptrs_.push_back(s.data());
    }
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(FlagParserTest, ParsesAllTypesWithEqualsSyntax) {
  int64_t n = 1;
  double x = 0.0;
  std::string s = "default";
  bool b = false;
  uint64_t size = 0;
  FlagParser parser("test");
  parser.AddInt64("n", &n, "an int");
  parser.AddDouble("x", &x, "a double");
  parser.AddString("s", &s, "a string");
  parser.AddBool("b", &b, "a bool");
  parser.AddSize("size", &size, "a size");
  ArgvBuilder args({"prog", "--n=42", "--x=2.5", "--s=hello", "--b=true",
                    "--size=8m"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(b);
  EXPECT_EQ(size, 8ULL << 20);
}

TEST(FlagParserTest, SpaceSeparatedValues) {
  int64_t n = 0;
  FlagParser parser("test");
  parser.AddInt64("n", &n, "an int");
  ArgvBuilder args({"prog", "--n", "7"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(n, 7);
}

TEST(FlagParserTest, BareBoolSetsTrue) {
  bool verbose = false;
  FlagParser parser("test");
  parser.AddBool("verbose", &verbose, "verbosity");
  ArgvBuilder args({"prog", "--verbose"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(verbose);
}

TEST(FlagParserTest, UnknownFlagIsError) {
  FlagParser parser("test");
  ArgvBuilder args({"prog", "--nope=1"});
  Status st = parser.Parse(args.argc(), args.argv());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, MissingValueIsError) {
  int64_t n = 0;
  FlagParser parser("test");
  parser.AddInt64("n", &n, "an int");
  ArgvBuilder args({"prog", "--n"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagParserTest, BadValueIsError) {
  int64_t n = 0;
  FlagParser parser("test");
  parser.AddInt64("n", &n, "an int");
  ArgvBuilder args({"prog", "--n=abc"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagParserTest, CollectsPositionalArguments) {
  FlagParser parser("test");
  ArgvBuilder args({"prog", "input.bin", "output.bin"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"input.bin", "output.bin"}));
}

TEST(FlagParserTest, DefaultsSurviveWhenNotPassed) {
  int64_t n = 99;
  FlagParser parser("test");
  parser.AddInt64("n", &n, "an int");
  ArgvBuilder args({"prog"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(n, 99);
}

TEST(FlagParserTest, HelpSetsFlagAndSucceeds) {
  FlagParser parser("test");
  ArgvBuilder args({"prog", "--help"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(parser.help_requested());
}

TEST(FlagParserTest, BadDoubleAndSizeValuesAreErrors) {
  double x = 0.0;
  uint64_t size = 0;
  FlagParser parser("test");
  parser.AddDouble("x", &x, "a double");
  parser.AddSize("size", &size, "a size");
  {
    ArgvBuilder args({"prog", "--x=fast"});
    EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
  }
  {
    ArgvBuilder args({"prog", "--size=12q"});
    EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
  }
}

TEST(FlagParserTest, TrailingGarbageAfterNumberIsError) {
  // "4x" must not silently parse as 4 — the benches rely on this to reject
  // malformed --workers/--fleet values instead of running a wrong config.
  int64_t n = 0;
  FlagParser parser("test");
  parser.AddInt64("n", &n, "an int");
  ArgvBuilder args({"prog", "--n=4x"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagParserTest, WasSetTracksEverySyntaxForm) {
  int64_t n = 0;
  std::string s = "default";
  bool b = false;
  FlagParser parser("test");
  parser.AddInt64("n", &n, "an int");
  parser.AddString("s", &s, "a string");
  parser.AddBool("b", &b, "a bool");
  ArgvBuilder args({"prog", "--n=1", "--s", "", "--b"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(parser.was_set("n"));    // --flag=value
  EXPECT_TRUE(parser.was_set("s"));    // --flag value (even empty)
  EXPECT_TRUE(parser.was_set("b"));    // bare bool
  EXPECT_TRUE(s.empty());  // was_set distinguishes "--s ''" from unset
}

TEST(FlagParserTest, WasSetIsFalseForDefaultsAndUnknownNames) {
  int64_t n = 5;
  FlagParser parser("test");
  parser.AddInt64("n", &n, "an int");
  ArgvBuilder args({"prog"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_FALSE(parser.was_set("n"));
  EXPECT_FALSE(parser.was_set("never_registered"));
}

TEST(FlagParserTest, UsageListsFlagsAndDefaults) {
  int64_t iters = 10;
  FlagParser parser("my bench");
  parser.AddInt64("iterations", &iters, "number of iterations");
  std::string usage = parser.Usage("prog");
  EXPECT_NE(usage.find("my bench"), std::string::npos);
  EXPECT_NE(usage.find("iterations"), std::string::npos);
  EXPECT_NE(usage.find("default: 10"), std::string::npos);
}

}  // namespace
}  // namespace m3::util
