#include "obs/trace_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "io/file.h"
#include "obs/trace_session.h"
#include "util/json.h"
#include "util/stopwatch.h"

namespace m3::obs {
namespace {

using util::JsonValue;

/// Every test drives the process-global recorder, so each starts a fresh
/// session (Start clears all rings) and stops it on the way out.
class TraceRecorderTest : public ::testing::Test {
 protected:
  void TearDown() override { TraceRecorder::Get().Stop(); }
};

JsonValue ParseTrace() {
  auto json = TraceRecorder::Get().ToJson();
  EXPECT_TRUE(json.ok()) << json.status().ToString();
  auto doc = util::JsonParse(json.value());
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return doc.ok() ? std::move(doc).value() : JsonValue();
}

const JsonValue* Events(const JsonValue& doc) {
  const JsonValue* events = doc.Find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (events != nullptr) {
    EXPECT_TRUE(events->is_array());
  }
  return events;
}

size_t CountSpansNamed(const JsonValue& doc, const std::string& name) {
  const JsonValue* events = Events(doc);
  size_t count = 0;
  for (const JsonValue& event : events->array) {
    if (event.StringOr("ph", "") == "X" && event.StringOr("name", "") == name) {
      ++count;
    }
  }
  return count;
}

TEST_F(TraceRecorderTest, DisabledByDefaultAndFreeOfEvents) {
  ASSERT_FALSE(TracingEnabled());
  {
    ScopedSpan span("exec", "compute");
    EXPECT_FALSE(span.armed());
    span.AddArg("position", uint64_t{1});  // must be a safe no-op
  }
  EmitCounter("residency", "resident_bytes", 1.0);
  // Nothing above may have recorded: a fresh session's document carries
  // metadata only.
  TraceRecorder::Get().Start();
  TraceRecorder::Get().Stop();
  JsonValue doc = ParseTrace();
  EXPECT_EQ(CountSpansNamed(doc, "compute"), 0u);
}

TEST_F(TraceRecorderTest, SpanRoundTripWithArgs) {
  TraceRecorder::Get().Start();
  NameThisThread("test-main");
  {
    ScopedSpan pass("exec", "pass");
    pass.AddArg("chunks", uint64_t{7});
    {
      ScopedSpan compute("exec", "compute");
      compute.AddArg("race", "stall");
      compute.AddArg("bytes", uint64_t{4096});
      compute.AddArg("score", 0.5);
    }
  }
  EmitCounter("residency", "resident_bytes", 12345.0);
  TraceRecorder::Get().Stop();

  JsonValue doc = ParseTrace();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.StringOr("displayTimeUnit", ""), "ms");
  EXPECT_EQ(CountSpansNamed(doc, "pass"), 1u);
  EXPECT_EQ(CountSpansNamed(doc, "compute"), 1u);

  const JsonValue* events = Events(doc);
  bool saw_thread_name = false, saw_counter = false, saw_args = false;
  for (const JsonValue& event : events->array) {
    const std::string_view ph = event.StringOr("ph", "");
    if (ph == "M" && event.StringOr("name", "") == "thread_name") {
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      if (args->StringOr("name", "") == "test-main") {
        saw_thread_name = true;
      }
    }
    if (ph == "C" && event.StringOr("name", "") == "residency") {
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_DOUBLE_EQ(args->NumberOr("resident_bytes", 0), 12345.0);
      saw_counter = true;
    }
    if (ph == "X" && event.StringOr("name", "") == "compute") {
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->StringOr("race", ""), "stall");
      EXPECT_DOUBLE_EQ(args->NumberOr("bytes", 0), 4096.0);
      EXPECT_DOUBLE_EQ(args->NumberOr("score", 0), 0.5);
      saw_args = true;
      // ts/dur are in microseconds relative to the session epoch.
      EXPECT_GE(event.NumberOr("ts", -1), 0.0);
      EXPECT_GE(event.NumberOr("dur", -1), 0.0);
    }
  }
  EXPECT_TRUE(saw_thread_name);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_args);
}

TEST_F(TraceRecorderTest, SpansNestPerThread) {
  TraceRecorder::Get().Start();
  {
    ScopedSpan outer("exec", "outer");
    { ScopedSpan inner("exec", "inner"); }
    { ScopedSpan inner("exec", "inner"); }
  }
  std::thread other([] {
    ScopedSpan span("exec", "other_thread");
  });
  other.join();
  TraceRecorder::Get().Stop();

  JsonValue doc = ParseTrace();
  const JsonValue* events = Events(doc);
  // The two threads get distinct tids; within the main thread the inner
  // spans' [ts, ts+dur] lie inside the outer span's.
  double outer_ts = -1, outer_end = -1;
  uint64_t outer_tid = 0, other_tid = 0;
  for (const JsonValue& event : events->array) {
    if (event.StringOr("ph", "") != "X") {
      continue;
    }
    if (event.StringOr("name", "") == "outer") {
      outer_ts = event.NumberOr("ts", 0);
      outer_end = outer_ts + event.NumberOr("dur", 0);
      outer_tid = static_cast<uint64_t>(event.NumberOr("tid", 0));
    } else if (event.StringOr("name", "") == "other_thread") {
      other_tid = static_cast<uint64_t>(event.NumberOr("tid", 0));
    }
  }
  ASSERT_GE(outer_ts, 0.0);
  EXPECT_NE(outer_tid, other_tid);
  for (const JsonValue& event : events->array) {
    if (event.StringOr("ph", "") == "X" &&
        event.StringOr("name", "") == "inner") {
      const double ts = event.NumberOr("ts", 0);
      const double end = ts + event.NumberOr("dur", 0);
      EXPECT_GE(ts, outer_ts - 0.001);
      EXPECT_LE(end, outer_end + 0.001);
      EXPECT_EQ(static_cast<uint64_t>(event.NumberOr("tid", -1)), outer_tid);
    }
  }
}

TEST_F(TraceRecorderTest, RingOverflowKeepsNewestAndCountsDrops) {
  TraceRecorderOptions options;
  options.events_per_thread = 8;
  TraceRecorder::Get().Start(options);
  for (uint64_t i = 0; i < 100; ++i) {
    ScopedSpan span("exec", "tick");
    span.AddArg("i", i);
  }
  TraceRecorder::Get().Stop();
  EXPECT_EQ(TraceRecorder::Get().dropped_events(), 92u);

  JsonValue doc = ParseTrace();
  EXPECT_DOUBLE_EQ(doc.NumberOr("dropped_events", -1), 92.0);
  EXPECT_EQ(CountSpansNamed(doc, "tick"), 8u);
  // The survivors are the NEWEST events (i in [92, 100)).
  const JsonValue* events = Events(doc);
  for (const JsonValue& event : events->array) {
    if (event.StringOr("ph", "") == "X") {
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_GE(args->NumberOr("i", -1), 92.0);
    }
  }
}

TEST_F(TraceRecorderTest, StartClearsPreviousSession) {
  TraceRecorder::Get().Start();
  { ScopedSpan span("exec", "stale"); }
  TraceRecorder::Get().Stop();
  TraceRecorder::Get().Start();
  { ScopedSpan span("exec", "fresh"); }
  TraceRecorder::Get().Stop();
  JsonValue doc = ParseTrace();
  EXPECT_EQ(CountSpansNamed(doc, "stale"), 0u);
  EXPECT_EQ(CountSpansNamed(doc, "fresh"), 1u);
}

TEST_F(TraceRecorderTest, MetadataAppearsAsTopLevelMember) {
  TraceRecorder::Get().Start();
  TraceRecorder::Get().SetMetadata("pipeline_stats", "{\"stalls\": 3}");
  TraceRecorder::Get().Stop();
  JsonValue doc = ParseTrace();
  const JsonValue* stats = doc.Find("pipeline_stats");
  ASSERT_NE(stats, nullptr);
  ASSERT_TRUE(stats->is_object());
  EXPECT_DOUBLE_EQ(stats->NumberOr("stalls", 0), 3.0);
}

TEST_F(TraceRecorderTest, CountersFromManyThreadsAllSurvive) {
  TraceRecorder::Get().Start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        EmitCounter("rss", "rss_bytes", 1000.0 + i);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  TraceRecorder::Get().Stop();
  JsonValue doc = ParseTrace();
  const JsonValue* events = Events(doc);
  size_t counters = 0;
  for (const JsonValue& event : events->array) {
    if (event.StringOr("ph", "") == "C") {
      ++counters;
    }
  }
  EXPECT_EQ(counters, 200u);
}

// The drain-while-emitting contract (docs/CORRECTNESS.md): draining the
// recorder while writer threads are mid-emit is a defined interleaving,
// not a data race. Writers hammer spans and counters while the main
// thread repeatedly drains (ToJson + dropped_events) and even restarts
// the session; every drained document must parse. This is the test the
// TSan CI leg exists for — before the per-ring mutex, it raced on the
// ring slots and the append cursor.
TEST_F(TraceRecorderTest, DrainWhileEmittingIsRaceFreeAndParseable) {
  TraceRecorderOptions options;
  options.events_per_thread = 256;  // force wrap-around under the drain
  TraceRecorder::Get().Start(options);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop, t] {
      NameThisThread("stress-writer");
      // Relaxed: stop is an advisory flag; join() is the sync point.
      for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        {
          ScopedSpan span("exec", "stress");
          if (span.armed()) {
            span.AddArg("writer", static_cast<uint64_t>(t));
            span.AddArg("i", i);
          }
        }
        if (i % 8 == 0) {
          EmitCounter("stress", "ticks", static_cast<double>(i));
        }
      }
    });
  }
  for (int drain = 0; drain < 25; ++drain) {
    auto json = TraceRecorder::Get().ToJson();
    ASSERT_TRUE(json.ok()) << json.status().ToString();
    auto doc = util::JsonParse(json.value());
    ASSERT_TRUE(doc.ok()) << "drain " << drain << ": "
                          << doc.status().ToString();
    (void)TraceRecorder::Get().dropped_events();
    if (drain == 12) {
      // Mid-run restart: Start() resets every live ring under its lock.
      TraceRecorder::Get().Start(options);
    }
  }
  // The restart emptied every ring, and the writers may have spent the
  // whole drain loop parked on the ring locks. Before stopping, wait for
  // proof they emitted into the new session — a wrapped ring (dropped
  // events) means at least `events_per_thread` appends landed — so the
  // final document is non-trivial. Bounded, so a regression fails the
  // assertion below instead of hanging the suite.
  util::Stopwatch deadline;
  while (TraceRecorder::Get().dropped_events() == 0 &&
         deadline.ElapsedSeconds() < 10.0) {
    std::this_thread::yield();
  }
  // Relaxed: stop is an advisory flag; join() is the sync point.
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& writer : writers) {
    writer.join();
  }
  TraceRecorder::Get().Stop();
  JsonValue doc = ParseTrace();
  // Post-quiescence drain still sees writer events from the final session.
  EXPECT_GT(CountSpansNamed(doc, "stress"), 0u);
}

// The always-compiled contract: with tracing off, a span site is one
// relaxed load and a branch. The bound here is deliberately loose (CI
// machines jitter); it exists to catch a regression that puts a lock,
// allocation, or clock read on the disabled path — any of which is >10x.
TEST_F(TraceRecorderTest, DisabledSpanSiteIsCheap) {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  // Sanitizers instrument the enable-flag load itself (~10x), so the
  // bound below would measure the sanitizer, not the span site. The
  // native CI legs keep enforcing it.
  GTEST_SKIP() << "timing bound is meaningless under sanitizers";
#endif
  ASSERT_FALSE(TracingEnabled());
  constexpr int kIterations = 1'000'000;
  util::Stopwatch watch;
  for (int i = 0; i < kIterations; ++i) {
    ScopedSpan span("exec", "compute");
    // No AddArg: real call sites guard args behind armed().
  }
  const double seconds = watch.ElapsedSeconds();
  EXPECT_LT(seconds / kIterations, 100e-9)
      << "disabled span costs " << seconds / kIterations * 1e9 << " ns";
}

TEST_F(TraceRecorderTest, GlobalSessionWritesFileOnStop) {
  const std::string path =
      ::testing::TempDir() + "/trace_session_test.json";
  TraceSessionOptions options;
  options.start_sampler = false;  // deterministic: no background thread
  ASSERT_TRUE(StartGlobalTrace(path, options));
  EXPECT_TRUE(GlobalTraceActive());
  EXPECT_FALSE(StartGlobalTrace(path, options));  // already active
  { ScopedSpan span("exec", "session_work"); }
  ASSERT_TRUE(StopGlobalTraceAndWrite().ok());
  EXPECT_FALSE(GlobalTraceActive());

  auto text = io::ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  auto doc = util::JsonParse(text.value());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(CountSpansNamed(doc.value(), "session_work"), 1u);
  // Stopping again is a no-op, not an error.
  EXPECT_TRUE(StopGlobalTraceAndWrite().ok());
}

}  // namespace
}  // namespace m3::obs
