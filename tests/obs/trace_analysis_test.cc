#include "obs/trace_analysis.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/trace_recorder.h"
#include "util/json.h"

namespace m3::obs {
namespace {

using util::JsonValue;

JsonValue Parse(const std::string& text) {
  auto doc = util::JsonParse(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return doc.ok() ? std::move(doc).value() : JsonValue();
}

// A hand-built two-thread trace: tid 1 drives one 10 ms pass with 6 ms of
// compute (two chunks, one a stall), tid 2 runs 6 ms of prefetch.
// All ts/dur in microseconds, as in real traces.
constexpr char kPipelineTrace[] = R"({
  "displayTimeUnit": "ms",
  "traceEvents": [
    {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1,
     "args": {"name": "driver"}},
    {"ph": "X", "name": "pass", "cat": "exec", "pid": 1, "tid": 1,
     "ts": 0.0, "dur": 10000.0, "args": {"chunks": 2}},
    {"ph": "X", "name": "compute", "cat": "exec", "pid": 1, "tid": 1,
     "ts": 100.0, "dur": 2000.0,
     "args": {"position": 0, "chunk": 0, "race": "hit"}},
    {"ph": "X", "name": "compute", "cat": "exec", "pid": 1, "tid": 1,
     "ts": 4000.0, "dur": 4000.0,
     "args": {"position": 1, "chunk": 1, "race": "stall"}},
    {"ph": "X", "name": "retire", "cat": "exec", "pid": 1, "tid": 1,
     "ts": 8200.0, "dur": 100.0, "args": {"position": 1, "chunk": 1}},
    {"ph": "X", "name": "prefetch", "cat": "exec", "pid": 1, "tid": 2,
     "ts": 0.0, "dur": 6000.0, "args": {"position": 0, "bytes": 65536}},
    {"ph": "C", "name": "residency", "pid": 1, "tid": 3, "ts": 1.0,
     "args": {"resident_bytes": 1000.0}},
    {"ph": "C", "name": "exec.stalls", "pid": 1, "tid": 3, "ts": 1.0,
     "args": {"count": 0.0}},
    {"ph": "C", "name": "exec.stalls", "pid": 1, "tid": 3, "ts": 5000.0,
     "args": {"count": 1.0}}
  ]
})";

TEST(ValidateTraceTest, AcceptsWellFormedTrace) {
  const util::Status status = ValidateTrace(Parse(kPipelineTrace));
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ValidateTraceTest, RejectsNonObjectAndMissingEvents) {
  EXPECT_FALSE(ValidateTrace(Parse("[1, 2]")).ok());
  EXPECT_FALSE(ValidateTrace(Parse("{\"foo\": 1}")).ok());
  EXPECT_FALSE(ValidateTrace(Parse("{\"traceEvents\": 3}")).ok());
}

TEST(ValidateTraceTest, RejectsOverlappingNonNestedSpans) {
  // [0, 100] and [50, 150] on one tid overlap without nesting.
  const util::Status status = ValidateTrace(Parse(R"({"traceEvents": [
    {"ph": "X", "name": "a", "tid": 1, "ts": 0.0, "dur": 100.0},
    {"ph": "X", "name": "b", "tid": 1, "ts": 50.0, "dur": 100.0}
  ]})"));
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("nest"), std::string::npos);
}

TEST(ValidateTraceTest, AcceptsSameSpansOnDifferentThreads) {
  const util::Status status = ValidateTrace(Parse(R"({"traceEvents": [
    {"ph": "X", "name": "a", "tid": 1, "ts": 0.0, "dur": 100.0},
    {"ph": "X", "name": "b", "tid": 2, "ts": 50.0, "dur": 100.0}
  ]})"));
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ValidateTraceTest, RejectsNonMonotoneExecCounters) {
  const util::Status status = ValidateTrace(Parse(R"({"traceEvents": [
    {"ph": "C", "name": "exec.prefetch_bytes", "tid": 1, "ts": 0.0,
     "args": {"bytes": 100.0}},
    {"ph": "C", "name": "exec.prefetch_bytes", "tid": 1, "ts": 1.0,
     "args": {"bytes": 50.0}}
  ]})"));
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("monotone"), std::string::npos);
}

TEST(ValidateTraceTest, GaugeCountersMayDecrease) {
  // "residency"/"rss" are gauges, not cumulative: only exec.* tracks
  // carry the monotonicity contract.
  const util::Status status = ValidateTrace(Parse(R"({"traceEvents": [
    {"ph": "C", "name": "residency", "tid": 1, "ts": 0.0,
     "args": {"resident_bytes": 100.0}},
    {"ph": "C", "name": "residency", "tid": 1, "ts": 1.0,
     "args": {"resident_bytes": 50.0}}
  ]})"));
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ValidateTraceTest, RejectsSpanWithoutTimestamps) {
  EXPECT_FALSE(ValidateTrace(Parse(R"({"traceEvents": [
    {"ph": "X", "name": "a", "tid": 1}
  ]})")).ok());
}

TEST(AnalyzeTraceTest, StageUtilizationAndCounts) {
  auto summary = AnalyzeTrace(Parse(kPipelineTrace));
  ASSERT_TRUE(summary.ok());
  const TraceSummary& s = summary.value();
  EXPECT_EQ(s.spans, 5u);
  EXPECT_EQ(s.counters, 3u);
  EXPECT_NEAR(s.wall_seconds, 0.010, 1e-9);
  EXPECT_NEAR(s.drive_seconds, 0.010, 1e-9);
  EXPECT_NEAR(s.compute_seconds, 0.006, 1e-9);
  EXPECT_NEAR(s.retire_seconds, 0.0001, 1e-9);
  EXPECT_NEAR(s.prefetch_seconds, 0.006, 1e-9);
  // Stages sorted by busy seconds: "pass" leads.
  ASSERT_FALSE(s.stages.empty());
  EXPECT_EQ(s.stages.front().name, "pass");
  EXPECT_NEAR(s.stages.front().utilization, 1.0, 1e-6);
  // Distinct counter tracks, sorted.
  ASSERT_EQ(s.counter_tracks.size(), 2u);
  EXPECT_EQ(s.counter_tracks[0], "exec.stalls");
  EXPECT_EQ(s.counter_tracks[1], "residency");
}

TEST(AnalyzeTraceTest, OverlapEfficiencyMatchesCombineOverlapInverse) {
  auto summary = AnalyzeTrace(Parse(kPipelineTrace));
  ASSERT_TRUE(summary.ok());
  const TraceSummary& s = summary.value();
  // cpu = compute + retire = 6.1 ms; io = prefetch = 6 ms; drive = 10 ms.
  // eff = (cpu + io - drive) / min(cpu, io) = 2.1 / 6.
  EXPECT_NEAR(s.measured_overlap_efficiency, 0.0021 / 0.006, 1e-6);
  // Perfect overlap would have driven the pass in max(cpu, io) = 6.1 ms;
  // the bubble is the rest of the measured 10 ms.
  EXPECT_NEAR(s.perfect_overlap_seconds, 0.0061, 1e-9);
  EXPECT_NEAR(s.bubble_seconds, 0.010 - 0.0061, 1e-9);
}

TEST(AnalyzeTraceTest, TopStallsComeLongestFirst) {
  auto summary = AnalyzeTrace(Parse(kPipelineTrace), /*top_n=*/5);
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary.value().top_stalls.size(), 1u);
  const StallRecord& stall = summary.value().top_stalls.front();
  EXPECT_NEAR(stall.seconds, 0.004, 1e-9);
  EXPECT_EQ(stall.position, 1u);
  EXPECT_EQ(stall.chunk, 1u);
  EXPECT_EQ(stall.tid, 1u);
}

TEST(AnalyzeTraceTest, TopNCapsStallList) {
  std::string trace = "{\"traceEvents\": [";
  for (int i = 0; i < 10; ++i) {
    if (i > 0) {
      trace += ",";
    }
    trace += "{\"ph\": \"X\", \"name\": \"compute\", \"tid\": 1, \"ts\": " +
             std::to_string(i * 1000.0) + ", \"dur\": " +
             std::to_string(100.0 * (i + 1)) +
             ", \"args\": {\"race\": \"stall\", \"position\": " +
             std::to_string(i) + "}}";
  }
  trace += "]}";
  auto summary = AnalyzeTrace(Parse(trace), /*top_n=*/3);
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary.value().top_stalls.size(), 3u);
  // Longest stalls are the last-emitted ones (dur grows with i).
  EXPECT_EQ(summary.value().top_stalls[0].position, 9u);
  EXPECT_EQ(summary.value().top_stalls[1].position, 8u);
  EXPECT_EQ(summary.value().top_stalls[2].position, 7u);
}

TEST(AnalyzeTraceTest, EmptyTraceYieldsZeroSummary) {
  auto summary = AnalyzeTrace(Parse("{\"traceEvents\": []}"));
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().spans, 0u);
  EXPECT_DOUBLE_EQ(summary.value().wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(summary.value().measured_overlap_efficiency, 0.0);
  EXPECT_NE(summary.value().ToString(), "");
}

TEST(AnalyzeTraceTest, RecorderOutputValidatesEndToEnd) {
  TraceRecorder::Get().Start();
  {
    ScopedSpan pass("exec", "pass");
    {
      ScopedSpan prefetch("exec", "prefetch");
    }
    {
      ScopedSpan compute("exec", "compute");
      compute.AddArg("race", "stall");
      compute.AddArg("position", uint64_t{3});
    }
    { ScopedSpan retire("exec", "retire"); }
    { ScopedSpan evict("exec", "evict"); }
  }
  EmitCounter("exec.stalls", "count", 1.0);
  TraceRecorder::Get().Stop();
  auto json = TraceRecorder::Get().ToJson();
  ASSERT_TRUE(json.ok());
  JsonValue doc = Parse(json.value());
  EXPECT_TRUE(ValidateTrace(doc).ok());
  auto summary = AnalyzeTrace(doc);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value().spans, 5u);
  EXPECT_EQ(summary.value().top_stalls.size(), 1u);
  EXPECT_EQ(summary.value().top_stalls.front().position, 3u);
  // All four pipeline stages present — the trace_summarize smoke gate's
  // required-stage set.
  size_t found = 0;
  for (const StageUtilization& stage : summary.value().stages) {
    if (stage.name == "prefetch" || stage.name == "compute" ||
        stage.name == "retire" || stage.name == "evict") {
      ++found;
    }
  }
  EXPECT_EQ(found, 4u);
}

}  // namespace
}  // namespace m3::obs
