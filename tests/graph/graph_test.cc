#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <set>
#include <vector>

#include "graph/connected_components.h"
#include "graph/edge_list.h"
#include "graph/pagerank.h"
#include "io/file.h"

namespace m3::graph {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ =
        ::testing::TempDir() + "/m3_graph_test_" + std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string WriteGraph(const std::string& name, uint64_t nodes,
                         const std::vector<Edge>& edges) {
    const std::string path = dir_ + "/" + name;
    EXPECT_TRUE(WriteEdgeList(path, nodes, edges).ok());
    return path;
  }

  std::string dir_;
};

TEST_F(GraphTest, EdgeListRoundTrip) {
  std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 0}, {3, 3}};
  const std::string path = WriteGraph("rt.m3g", 4, edges);
  auto graph = MappedEdgeList::Open(path);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph.value().num_nodes(), 4u);
  EXPECT_EQ(graph.value().num_edges(), 4u);
  for (size_t e = 0; e < edges.size(); ++e) {
    EXPECT_EQ(graph.value().edge(e).src, edges[e].src);
    EXPECT_EQ(graph.value().edge(e).dst, edges[e].dst);
  }
}

TEST_F(GraphTest, OutOfRangeEdgeRejected) {
  EXPECT_FALSE(WriteEdgeList(dir_ + "/bad.m3g", 2, {{0, 5}}).ok());
}

TEST_F(GraphTest, CorruptFileRejected) {
  const std::string path = dir_ + "/corrupt.m3g";
  ASSERT_TRUE(io::WriteStringToFile(path, std::string(8192, 'x')).ok());
  EXPECT_FALSE(MappedEdgeList::Open(path).ok());
}

TEST_F(GraphTest, TruncatedFileRejected) {
  std::vector<Edge> edges{{0, 1}, {1, 0}};
  const std::string path = WriteGraph("trunc.m3g", 2, edges);
  auto contents = io::ReadFileToString(path).ValueOrDie();
  contents.resize(contents.size() - 8);
  ASSERT_TRUE(io::WriteStringToFile(path, contents).ok());
  EXPECT_FALSE(MappedEdgeList::Open(path).ok());
}

TEST_F(GraphTest, RandomGraphIsDeterministicAndInRange) {
  auto a = RandomGraph(100, 500, 42);
  auto b = RandomGraph(100, 500, 42);
  ASSERT_EQ(a.size(), 500u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_LT(a[i].src, 100u);
    EXPECT_LT(a[i].dst, 100u);
  }
}

TEST_F(GraphTest, PageRankSumsToOne) {
  auto edges = RandomGraph(200, 1000, 7);
  const std::string path = WriteGraph("pr.m3g", 200, edges);
  auto graph = MappedEdgeList::Open(path).ValueOrDie();
  auto result = PageRank(graph);
  ASSERT_TRUE(result.ok());
  double sum = 0;
  for (double rank : result.value().ranks) {
    EXPECT_GT(rank, 0.0);
    sum += rank;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(GraphTest, PageRankUniformOnSymmetricCycle) {
  // 0 -> 1 -> 2 -> 3 -> 0: perfect symmetry, uniform ranks.
  std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  const std::string path = WriteGraph("cycle.m3g", 4, edges);
  auto graph = MappedEdgeList::Open(path).ValueOrDie();
  auto result = PageRank(graph).ValueOrDie();
  for (double rank : result.ranks) {
    EXPECT_NEAR(rank, 0.25, 1e-9);
  }
  EXPECT_TRUE(result.converged);
}

TEST_F(GraphTest, PageRankStarCenterDominates) {
  // Everyone links to node 0.
  std::vector<Edge> edges{{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  const std::string path = WriteGraph("star.m3g", 5, edges);
  auto graph = MappedEdgeList::Open(path).ValueOrDie();
  auto result = PageRank(graph).ValueOrDie();
  for (uint64_t v = 1; v < 5; ++v) {
    EXPECT_GT(result.ranks[0], result.ranks[v] * 2);
  }
}

TEST_F(GraphTest, PageRankHandlesDanglingNodes) {
  // Node 1 has no out-edges: its mass must be redistributed, not lost.
  std::vector<Edge> edges{{0, 1}};
  const std::string path = WriteGraph("dangle.m3g", 3, edges);
  auto graph = MappedEdgeList::Open(path).ValueOrDie();
  auto result = PageRank(graph).ValueOrDie();
  double sum = 0;
  for (double rank : result.ranks) {
    sum += rank;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(result.ranks[1], result.ranks[2]);  // 1 receives, 2 doesn't
}

TEST_F(GraphTest, PageRankInvalidDampingRejected) {
  const std::string path = WriteGraph("d.m3g", 2, {{0, 1}});
  auto graph = MappedEdgeList::Open(path).ValueOrDie();
  PageRankOptions options;
  options.damping = 1.0;
  EXPECT_FALSE(PageRank(graph, options).ok());
}

TEST_F(GraphTest, ConnectedComponentsTwoIslands) {
  // {0,1,2} connected, {3,4} connected, {5} isolated.
  std::vector<Edge> edges{{0, 1}, {1, 2}, {3, 4}};
  const std::string path = WriteGraph("cc.m3g", 6, edges);
  auto graph = MappedEdgeList::Open(path).ValueOrDie();
  auto result = ConnectedComponents(graph).ValueOrDie();
  EXPECT_EQ(result.num_components, 3u);
  EXPECT_EQ(result.component[0], result.component[1]);
  EXPECT_EQ(result.component[1], result.component[2]);
  EXPECT_EQ(result.component[3], result.component[4]);
  EXPECT_NE(result.component[0], result.component[3]);
  EXPECT_NE(result.component[0], result.component[5]);
  // Canonical labels are the minimum node ids.
  EXPECT_EQ(result.component[0], 0u);
  EXPECT_EQ(result.component[3], 3u);
  EXPECT_EQ(result.component[5], 5u);
}

TEST_F(GraphTest, ConnectedComponentsDirectionIgnored) {
  std::vector<Edge> edges{{2, 0}, {1, 2}};  // arbitrary directions
  const std::string path = WriteGraph("dir.m3g", 3, edges);
  auto graph = MappedEdgeList::Open(path).ValueOrDie();
  auto result = ConnectedComponents(graph).ValueOrDie();
  EXPECT_EQ(result.num_components, 1u);
}

TEST_F(GraphTest, ConnectedComponentsBigRandomGraphIsFullyConnected) {
  // 500 nodes, 5000 random edges: connected with overwhelming probability.
  auto edges = RandomGraph(500, 5000, 3);
  const std::string path = WriteGraph("bigcc.m3g", 500, edges);
  auto graph = MappedEdgeList::Open(path).ValueOrDie();
  auto result = ConnectedComponents(graph).ValueOrDie();
  EXPECT_EQ(result.num_components, 1u);
}

TEST_F(GraphTest, ConnectedComponentsEngineMatchesReference) {
  // Engine-vs-reference equivalence: the pipelined chunked scan (small
  // chunks, prefetch ahead, eviction behind) must produce exactly the
  // labels of a plain in-memory union-find over the same edges.
  const uint64_t kNodes = 300;
  auto edges = RandomGraph(kNodes, 700, 11);
  const std::string path = WriteGraph("ccref.m3g", kNodes, edges);
  auto graph = MappedEdgeList::Open(path).ValueOrDie();

  // Reference: minimum-label union-find, no engine, no chunking.
  std::vector<uint64_t> parent(kNodes);
  for (uint64_t v = 0; v < kNodes; ++v) {
    parent[v] = v;
  }
  auto find = [&](uint64_t v) {
    while (parent[v] != v) {
      v = parent[v] = parent[parent[v]];
    }
    return v;
  };
  for (const Edge& edge : edges) {
    const uint64_t a = find(edge.src), b = find(edge.dst);
    if (a != b) {
      parent[std::max(a, b)] = std::min(a, b);
    }
  }

  ComponentsOptions options;
  options.chunk_edges = 64;       // many chunks
  options.readahead_chunks = 3;   // prefetch stage active
  options.ram_budget_bytes = 64 * sizeof(Edge) * 2;  // evict behind scan
  auto result = ConnectedComponents(graph, options).ValueOrDie();
  uint64_t reference_components = 0;
  for (uint64_t v = 0; v < kNodes; ++v) {
    EXPECT_EQ(result.component[v], find(v)) << "node " << v;
    if (find(v) == v) {
      ++reference_components;
    }
  }
  EXPECT_EQ(result.num_components, reference_components);

  // Chunking must not matter: one chunk == many chunks.
  ComponentsOptions one_chunk;
  one_chunk.chunk_edges = edges.size();
  auto whole = ConnectedComponents(graph, one_chunk).ValueOrDie();
  EXPECT_EQ(whole.component, result.component);
}

TEST_F(GraphTest, EmptyGraphRejectedByAlgorithms) {
  const std::string path = WriteGraph("empty.m3g", 0, {});
  // Zero nodes: header-only file.
  auto graph = MappedEdgeList::Open(path);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(PageRank(graph.value()).ok());
  EXPECT_FALSE(ConnectedComponents(graph.value()).ok());
}

}  // namespace
}  // namespace m3::graph
