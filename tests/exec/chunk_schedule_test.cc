#include "exec/chunk_schedule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "exec/chunk_map_reduce.h"
#include "exec/chunk_pipeline.h"
#include "io/file.h"
#include "la/chunker.h"

namespace m3::exec {
namespace {

// ---------------------------------------------------------------------------
// Schedule construction
// ---------------------------------------------------------------------------

TEST(ChunkScheduleTest, SequentialIsIdentity) {
  const ChunkSchedule schedule = ChunkSchedule::Sequential(5);
  EXPECT_TRUE(schedule.is_sequential());
  EXPECT_EQ(schedule.num_chunks(), 5u);
  for (size_t p = 0; p < 5; ++p) {
    EXPECT_EQ(schedule.At(p), p);
  }
}

TEST(ChunkScheduleTest, ShuffledIsAPermutationAndSeedDeterministic) {
  const ChunkSchedule a = ChunkSchedule::Shuffled(100, 7);
  const ChunkSchedule b = ChunkSchedule::Shuffled(100, 7);
  const ChunkSchedule c = ChunkSchedule::Shuffled(100, 8);
  EXPECT_FALSE(a.is_sequential());
  std::set<size_t> seen;
  bool identical_ab = true, identical_ac = true;
  for (size_t p = 0; p < 100; ++p) {
    EXPECT_TRUE(seen.insert(a.At(p)).second);  // each chunk exactly once
    EXPECT_LT(a.At(p), 100u);
    identical_ab &= a.At(p) == b.At(p);
    identical_ac &= a.At(p) == c.At(p);
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_TRUE(identical_ab);   // same seed, same order
  EXPECT_FALSE(identical_ac);  // different seed, different order
}

TEST(ChunkScheduleTest, StridedCoversEveryChunkInLaneOrder) {
  const ChunkSchedule schedule = ChunkSchedule::Strided(7, 3);
  // Lanes: 0,3,6 then 1,4 then 2,5.
  const std::vector<size_t> expected = {0, 3, 6, 1, 4, 2, 5};
  ASSERT_EQ(schedule.num_chunks(), 7u);
  for (size_t p = 0; p < expected.size(); ++p) {
    EXPECT_EQ(schedule.At(p), expected[p]) << "position " << p;
  }
}

TEST(ChunkScheduleTest, DegenerateStridesAreSequential) {
  EXPECT_TRUE(ChunkSchedule::Strided(10, 0).is_sequential());
  EXPECT_TRUE(ChunkSchedule::Strided(10, 1).is_sequential());
  // Stride >= num_chunks is one chunk per lane — the identity order — and
  // collapses to sequential so the fast paths stay enabled.
  const ChunkSchedule wide = ChunkSchedule::Strided(4, 100);
  EXPECT_TRUE(wide.is_sequential());
  std::set<size_t> seen;
  for (size_t p = 0; p < 4; ++p) {
    seen.insert(wide.At(p));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ChunkScheduleTest, MakeDispatchesOnOrder) {
  EXPECT_TRUE(ChunkSchedule::Make(ScanOrder::kSequential, 8).is_sequential());
  const ChunkSchedule shuffled =
      ChunkSchedule::Make(ScanOrder::kShuffled, 8, /*seed=*/3);
  EXPECT_FALSE(shuffled.is_sequential());
  const ChunkSchedule strided =
      ChunkSchedule::Make(ScanOrder::kStrided, 8, /*seed=*/0, /*stride=*/2);
  EXPECT_EQ(strided.At(1), 2u);
}

// ---------------------------------------------------------------------------
// Pipeline passes along a schedule
// ---------------------------------------------------------------------------

TEST(ScheduledPipelineTest, VisitAndRetireFollowTheScheduleOrder) {
  for (size_t workers : {0u, 2u, 4u}) {
    PipelineOptions options;
    options.num_workers = workers;
    ChunkPipeline pipeline(options);
    la::RowChunker chunker(1000, 64);
    const ChunkSchedule schedule =
        ChunkSchedule::Shuffled(chunker.NumChunks(), 11);
    std::vector<size_t> retired_chunks, retired_positions;
    pipeline.Run(
        chunker, schedule,
        [&](size_t, size_t chunk, size_t begin, size_t end) {
          const la::RowChunker::Range range = chunker.Chunk(chunk);
          EXPECT_EQ(begin, range.begin);
          EXPECT_EQ(end, range.end);
        },
        [&](size_t pos, size_t chunk, size_t, size_t) {
          retired_positions.push_back(pos);
          retired_chunks.push_back(chunk);
        });
    ASSERT_EQ(retired_chunks.size(), chunker.NumChunks()) << workers;
    for (size_t p = 0; p < retired_chunks.size(); ++p) {
      EXPECT_EQ(retired_positions[p], p);              // ascending positions
      EXPECT_EQ(retired_chunks[p], schedule.At(p));    // schedule order
    }
  }
}

TEST(ScheduledPipelineTest, RunPassWithoutPipelineFollowsSchedule) {
  la::RowChunker chunker(10, 3);
  const ChunkSchedule schedule = ChunkSchedule::Strided(4, 2);  // 0,2,1,3
  std::vector<size_t> mapped;
  RunPass(
      nullptr, chunker, schedule,
      [&](size_t, size_t chunk, size_t, size_t) { mapped.push_back(chunk); });
  const std::vector<size_t> expected = {0, 2, 1, 3};
  EXPECT_EQ(mapped, expected);
}

/// An order-sensitive floating-point reduction over a shuffled schedule:
/// bitwise equality across worker counts proves the in-order (by visit
/// position) merge guarantee extends to permuted schedules.
double ShuffledIllConditionedSum(ChunkPipeline* pipeline,
                                 const ChunkSchedule& schedule) {
  la::RowChunker chunker(4096, 13);
  double total = 0;
  MapReduceChunks<double>(
      pipeline, chunker, schedule,
      [](size_t, size_t begin, size_t end) {
        double partial = 0;
        for (size_t r = begin; r < end; ++r) {
          partial += (r % 2 == 0 ? 1.0 : -1.0) *
                     std::pow(10.0, static_cast<double>(r % 17) - 8.0);
        }
        return partial;
      },
      [&](size_t, double&& partial) { total += partial; });
  return total;
}

TEST(ScheduledPipelineTest, MapReduceBitIdenticalAcrossWorkerCounts) {
  la::RowChunker chunker(4096, 13);
  const ChunkSchedule schedule =
      ChunkSchedule::Shuffled(chunker.NumChunks(), 99);
  const double serial = ShuffledIllConditionedSum(nullptr, schedule);
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    PipelineOptions options;
    options.num_workers = workers;
    ChunkPipeline pipeline(options);
    const double parallel = ShuffledIllConditionedSum(&pipeline, schedule);
    EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof(double)), 0)
        << "workers=" << workers;
  }
}

// ---------------------------------------------------------------------------
// Bound pipelines: schedule-aware prefetch and eviction
// ---------------------------------------------------------------------------

class ScheduledBoundPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_sched_test_" +
           std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  io::MemoryMappedFile MakeMapped(size_t rows, size_t row_doubles) {
    const std::string path = dir_ + "/data.bin";
    std::vector<double> values(rows * row_doubles);
    std::iota(values.begin(), values.end(), 0.0);
    std::string bytes(reinterpret_cast<const char*>(values.data()),
                      values.size() * sizeof(double));
    EXPECT_TRUE(io::WriteStringToFile(path, bytes).ok());
    return io::MemoryMappedFile::Map(path).ValueOrDie();
  }

  std::string dir_;
};

TEST_F(ScheduledBoundPipelineTest, PrefetchWalksThePermutation) {
  const size_t kRows = 1024, kRowDoubles = 64;
  io::MemoryMappedFile mapped = MakeMapped(kRows, kRowDoubles);
  MappedRegion region{&mapped, 0, kRowDoubles * sizeof(double)};
  PipelineOptions options;
  options.readahead_chunks = 3;
  ChunkPipeline pipeline(region, options);

  la::RowChunker chunker(kRows, 128);
  const ChunkSchedule schedule =
      ChunkSchedule::Shuffled(chunker.NumChunks(), 5);
  uint64_t checksum = 0;
  pipeline.Run(chunker, schedule,
               [&](size_t, size_t, size_t begin, size_t end) {
                 const double* data = mapped.As<const double>();
                 for (size_t r = begin; r < end; ++r) {
                   checksum += static_cast<uint64_t>(data[r * kRowDoubles]);
                 }
               });
  EXPECT_GT(checksum, 0u);
  const PipelineStats stats = pipeline.stats();
  // Every chunk gets one WILLNEED covering the whole region, regardless of
  // the visit order.
  EXPECT_EQ(stats.prefetches, chunker.NumChunks());
  EXPECT_EQ(stats.prefetch_bytes, kRows * kRowDoubles * sizeof(double));
  // Positions past the warm-up window are classified exactly once.
  EXPECT_EQ(stats.prefetch_hits + stats.stalls, chunker.NumChunks() - 3);
}

TEST_F(ScheduledBoundPipelineTest, EvictionWindowFollowsVisitOrder) {
  const size_t kRows = 100, kRowDoubles = 16;
  const uint64_t kRowBytes = kRowDoubles * sizeof(double);
  io::MemoryMappedFile mapped = MakeMapped(kRows, kRowDoubles);
  MappedRegion region{&mapped, 0, kRowBytes};
  PipelineOptions options;
  options.readahead_chunks = 0;  // isolate the evict stage
  options.ram_budget_bytes = 20 * kRowBytes;  // 2 chunks of 10 rows
  options.synchronous_eviction = true;
  ChunkPipeline pipeline(region, options);

  la::RowChunker chunker(kRows, 10);
  const ChunkSchedule schedule =
      ChunkSchedule::Shuffled(chunker.NumChunks(), 123);
  std::vector<uint64_t> evicted_after;
  pipeline.Run(
      chunker, schedule, [&](size_t, size_t, size_t, size_t) {},
      [&](size_t, size_t, size_t, size_t) {
        evicted_after.push_back(pipeline.stats().bytes_evicted);
      });
  // Same trailing-window shape as a sequential pass: nothing until the
  // 2-chunk budget is exceeded, then exactly one visited chunk per step —
  // the window tracks visit order, not file offsets.
  ASSERT_EQ(evicted_after.size(), 10u);
  EXPECT_EQ(evicted_after[0], 0u);
  EXPECT_EQ(evicted_after[1], 0u);
  EXPECT_EQ(evicted_after[2], 0u);
  for (size_t i = 3; i < 10; ++i) {
    EXPECT_EQ(evicted_after[i], (i - 2) * 10 * kRowBytes) << "chunk " << i;
  }
  // After the pass only the budget window of visited chunks is resident.
  EXPECT_EQ(pipeline.stats().bytes_evicted, (kRows - 20) * kRowBytes);
}

// ---------------------------------------------------------------------------
// Exception safety (RunParallel drains in-flight work)
// ---------------------------------------------------------------------------

TEST(PipelineExceptionTest, ThrowingMapPropagatesAndPipelineSurvives) {
  PipelineOptions options;
  options.num_workers = 4;
  ChunkPipeline pipeline(options);
  la::RowChunker chunker(1000, 10);
  EXPECT_THROW(
      pipeline.Run(chunker,
                   [&](size_t c, size_t, size_t) {
                     if (c == 20) {
                       throw std::runtime_error("chunk functor failed");
                     }
                   }),
      std::runtime_error);
  // Every worker has drained: a fresh pass on the same pipeline runs to
  // completion and visits every chunk exactly once.
  std::set<size_t> seen;
  pipeline.Run(
      chunker, [](size_t, size_t, size_t) {},
      [&](size_t c, size_t, size_t) { seen.insert(c); });
  EXPECT_EQ(seen.size(), chunker.NumChunks());
}

TEST(PipelineExceptionTest, ThrowingRetireDrainsInFlightMaps) {
  PipelineOptions options;
  options.num_workers = 4;
  ChunkPipeline pipeline(options);
  la::RowChunker chunker(1000, 10);
  std::atomic<size_t> maps_running{0};
  EXPECT_THROW(
      pipeline.Run(
          chunker,
          [&](size_t, size_t, size_t) {
            ++maps_running;
            --maps_running;
          },
          [&](size_t c, size_t, size_t) {
            if (c == 5) {
              throw std::runtime_error("retire failed");
            }
          }),
      std::runtime_error);
  // If the drain skipped an in-flight map, it would still be mutating the
  // (destroyed) captures now; the counter being balanced is the smoke
  // signal that nothing outlived the pass.
  EXPECT_EQ(maps_running.load(), 0u);
}

}  // namespace
}  // namespace m3::exec
