// The prefetch accounting invariant: every chunk a bound pipeline
// prefetches is classified exactly once — as a hit (prefetch landed before
// compute), a stall (compute got there first), or unclassified (pass
// warm-up, where the race has no meaning). So after any complete pass,
// regardless of schedule kind or worker fan-out:
//
//   prefetches == prefetch_hits + stalls + prefetch_unclassified
//
// This is what lets the cluster simulator (and benches) treat the three
// counters as a partition of the prefetched chunks instead of a sample.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "exec/chunk_pipeline.h"
#include "exec/chunk_schedule.h"
#include "io/file.h"
#include "io/io_stats.h"
#include "la/chunker.h"
#include "obs/trace_analysis.h"
#include "obs/trace_recorder.h"
#include "util/json.h"

namespace m3::exec {
namespace {

class CounterInvariantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_counter_test_" +
           std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  io::MemoryMappedFile MakeMapped(size_t rows, size_t row_doubles) {
    const std::string path = dir_ + "/data.bin";
    std::vector<double> values(rows * row_doubles);
    std::iota(values.begin(), values.end(), 0.0);
    std::string bytes(reinterpret_cast<const char*>(values.data()),
                      values.size() * sizeof(double));
    EXPECT_TRUE(io::WriteStringToFile(path, bytes).ok());
    return io::MemoryMappedFile::Map(path).ValueOrDie();
  }

  std::string dir_;
};

void ExpectInvariant(const PipelineStats& stats) {
  EXPECT_EQ(stats.prefetches,
            stats.prefetch_hits + stats.stalls + stats.prefetch_unclassified)
      << "hits=" << stats.prefetch_hits << " stalls=" << stats.stalls
      << " unclassified=" << stats.prefetch_unclassified;
}

ChunkSchedule MakeKind(ScanOrder order, size_t num_chunks) {
  switch (order) {
    case ScanOrder::kShuffled:
      return ChunkSchedule::Shuffled(num_chunks, 17);
    case ScanOrder::kStrided:
      return ChunkSchedule::Strided(num_chunks, 3, /*offset=*/1);
    case ScanOrder::kSequential:
      break;
  }
  return ChunkSchedule::Sequential(num_chunks);
}

TEST_F(CounterInvariantTest, HoldsPerScheduleKindSerial) {
  const size_t kRows = 2048, kCols = 32;
  io::MemoryMappedFile mapped = MakeMapped(kRows, kCols);
  for (const ScanOrder order : {ScanOrder::kSequential, ScanOrder::kShuffled,
                                ScanOrder::kStrided}) {
    PipelineOptions options;
    options.readahead_chunks = 2;
    ChunkPipeline pipeline({&mapped, 0, kCols * sizeof(double)}, options);
    la::RowChunker chunker(kRows, 128);
    volatile double sink = 0;
    pipeline.Run(chunker, MakeKind(order, chunker.NumChunks()),
                 [&](size_t, size_t, size_t begin, size_t end) {
                   const double* data = mapped.As<const double>();
                   double sum = 0;
                   for (size_t r = begin; r < end; ++r) {
                     sum += data[r * kCols];
                   }
                   sink = sink + sum;
                 });
    const PipelineStats stats = pipeline.stats();
    EXPECT_EQ(stats.prefetches, chunker.NumChunks()) << ToString(order);
    ExpectInvariant(stats);
  }
}

TEST_F(CounterInvariantTest, HoldsUnderWorkerFanOutAndAcrossPasses) {
  const size_t kRows = 2048, kCols = 32;
  io::MemoryMappedFile mapped = MakeMapped(kRows, kCols);
  for (const size_t workers : {size_t{0}, size_t{2}, size_t{4}}) {
    PipelineOptions options;
    options.readahead_chunks = 3;
    options.num_workers = workers;
    options.ram_budget_bytes = kRows * kCols * sizeof(double) / 4;
    ChunkPipeline pipeline({&mapped, 0, kCols * sizeof(double)}, options);
    la::RowChunker chunker(kRows, 64);
    for (size_t pass = 0; pass < 3; ++pass) {
      pipeline.Run(chunker,
                   ChunkSchedule::Shuffled(chunker.NumChunks(), 100 + pass),
                   [](size_t, size_t, size_t, size_t) {});
    }
    const PipelineStats stats = pipeline.stats();
    EXPECT_EQ(stats.prefetches, 3 * chunker.NumChunks());
    ExpectInvariant(stats);
  }
}

TEST_F(CounterInvariantTest, TinyPassIsAllWarmup) {
  // Fewer chunks than the readahead window: every position is dispatched
  // with no compute lead time, so nothing is classified — but nothing is
  // lost either.
  const size_t kRows = 64, kCols = 8;
  io::MemoryMappedFile mapped = MakeMapped(kRows, kCols);
  PipelineOptions options;
  options.readahead_chunks = 8;
  ChunkPipeline pipeline({&mapped, 0, kCols * sizeof(double)}, options);
  la::RowChunker chunker(kRows, 32);  // 2 chunks < 8 readahead
  pipeline.Run(chunker, [](size_t, size_t, size_t) {});
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.prefetches, chunker.NumChunks());
  EXPECT_EQ(stats.prefetch_hits + stats.stalls, 0u);
  EXPECT_EQ(stats.prefetch_unclassified, chunker.NumChunks());
  ExpectInvariant(stats);
}

TEST_F(CounterInvariantTest, UnboundOrNoReadaheadCountsNothing) {
  ChunkPipeline unbound;
  la::RowChunker chunker(100, 10);
  unbound.Run(chunker, [](size_t, size_t, size_t) {});
  EXPECT_EQ(unbound.stats().prefetches, 0u);
  EXPECT_EQ(unbound.stats().prefetch_unclassified, 0u);

  const size_t kCols = 8;
  io::MemoryMappedFile mapped = MakeMapped(100, kCols);
  PipelineOptions options;
  options.readahead_chunks = 0;
  ChunkPipeline pipeline({&mapped, 0, kCols * sizeof(double)}, options);
  pipeline.Run(chunker, [](size_t, size_t, size_t) {});
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.prefetches, 0u);
  EXPECT_EQ(stats.prefetch_hits + stats.stalls + stats.prefetch_unclassified,
            0u);
}

TEST(ExecCounterArithmeticTest, UnclassifiedFlowsThroughConversions) {
  PipelineStats a;
  a.prefetches = 10;
  a.prefetch_hits = 6;
  a.stalls = 1;
  a.prefetch_unclassified = 3;
  PipelineStats b = a + a;
  EXPECT_EQ(b.prefetch_unclassified, 6u);
  const io::ExecCounters counters = b.counters();
  EXPECT_EQ(counters.prefetch_unclassified, 6u);
  const io::ExecCounters delta = counters - a.counters();
  EXPECT_EQ(delta.prefetch_unclassified, 3u);
  EXPECT_NE(counters.ToString().find("warmup=6"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Retire-stage race sampling (RaceStage::kRetire)
// ---------------------------------------------------------------------------

TEST_F(CounterInvariantTest, RetireComputeStallsConsistentAcrossWorkers) {
  // The SGD shape: a no-op map and real work in retire. Pages are touched
  // at retire, so the race must be judged there. Each retire takes long
  // enough that every prefetch of this small warm mapping lands well
  // before its position retires — at every worker count the classified
  // positions are all hits and the stall count is zero. Under the old
  // map-dispatch sampling, fan-out dispatched the no-op maps in a burst
  // and miscounted those hits as stalls (the deleted "judge on the serial
  // configuration" caveat).
  const size_t kRows = 2048, kCols = 32;
  io::MemoryMappedFile mapped = MakeMapped(kRows, kCols);
  const la::RowChunker chunker(kRows, 128);  // 16 chunks
  for (const size_t workers : {size_t{0}, size_t{2}, size_t{4}}) {
    PipelineOptions options;
    options.readahead_chunks = 2;
    options.num_workers = workers;
    ChunkPipeline pipeline({&mapped, 0, kCols * sizeof(double)}, options);
    pipeline.Run(
        chunker, ChunkSchedule::Sequential(chunker.NumChunks()),
        [](size_t, size_t, size_t, size_t) {},
        [](size_t, size_t, size_t, size_t) {
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        },
        RaceStage::kRetire);
    const PipelineStats stats = pipeline.stats();
    EXPECT_EQ(stats.stalls, 0u) << "workers=" << workers;
    EXPECT_EQ(stats.stall_bytes, 0u) << "workers=" << workers;
    // The retire cursor is serial at any fan-out, so the warm-up window
    // is the readahead depth — not widened by the in-flight window — and
    // the classified count matches the serial configuration exactly.
    EXPECT_EQ(stats.prefetch_unclassified, 2u) << "workers=" << workers;
    EXPECT_EQ(stats.prefetch_hits, chunker.NumChunks() - 2)
        << "workers=" << workers;
    ExpectInvariant(stats);
  }
}

TEST_F(CounterInvariantTest, InvariantHoldsAtRetireRaceUnderShuffle) {
  const size_t kRows = 2048, kCols = 32;
  io::MemoryMappedFile mapped = MakeMapped(kRows, kCols);
  const la::RowChunker chunker(kRows, 64);
  for (const size_t workers : {size_t{0}, size_t{4}}) {
    PipelineOptions options;
    options.readahead_chunks = 3;
    options.num_workers = workers;
    options.ram_budget_bytes = kRows * kCols * sizeof(double) / 4;
    ChunkPipeline pipeline({&mapped, 0, kCols * sizeof(double)}, options);
    for (size_t pass = 0; pass < 2; ++pass) {
      pipeline.Run(chunker,
                   ChunkSchedule::Shuffled(chunker.NumChunks(), 7 + pass),
                   [](size_t, size_t, size_t, size_t) {},
                   [](size_t, size_t, size_t, size_t) {},
                   RaceStage::kRetire);
    }
    const PipelineStats stats = pipeline.stats();
    EXPECT_EQ(stats.prefetches, 2 * chunker.NumChunks());
    ExpectInvariant(stats);
  }
}

TEST_F(CounterInvariantTest, StallBytesCoverStalledChunksOnly) {
  // stall_bytes is the fit's disk-bandwidth numerator: it must cover
  // exactly the chunks counted in `stalls`. With no I/O thread delay on
  // a warm mapping stalls are rare; force the inverse — prefetches that
  // can never win — by making compute instantaneous and the racing
  // window cover every chunk via a cold (just-evicted) region on a
  // pipeline with no readahead lead... simplest deterministic check:
  // classified-at-map stalls account their chunk bytes.
  const size_t kRows = 1024, kCols = 16;
  io::MemoryMappedFile mapped = MakeMapped(kRows, kCols);
  const la::RowChunker chunker(kRows, 128);
  PipelineOptions options;
  options.readahead_chunks = 1;
  ChunkPipeline pipeline({&mapped, 0, kCols * sizeof(double)}, options);
  pipeline.Run(chunker, [](size_t, size_t, size_t) {});
  const PipelineStats stats = pipeline.stats();
  // Whatever the race outcomes were, bytes and counts must agree: every
  // stalled chunk is 128 rows of 16 doubles.
  EXPECT_EQ(stats.stall_bytes,
            stats.stalls * 128 * kCols * sizeof(double));
  ExpectInvariant(stats);
}

// ---------------------------------------------------------------------------
// Tracing must observe, never perturb
// ---------------------------------------------------------------------------

TEST_F(CounterInvariantTest, InvariantUnchangedWithTracingOnAcrossWorkers) {
  // The span sites sit inside the classification paths; turning the
  // recorder on must not change what gets counted, at any fan-out. The
  // run doubles as the real-pipeline trace-validity check: the recorded
  // trace must parse, nest per thread, and carry every pipeline stage —
  // the same contract tools/trace_summarize gates CI on.
  const size_t kRows = 2048, kCols = 32;
  io::MemoryMappedFile mapped = MakeMapped(kRows, kCols);
  obs::TraceRecorder::Get().Start();
  for (const size_t workers : {size_t{0}, size_t{2}, size_t{4}}) {
    PipelineOptions options;
    options.readahead_chunks = 3;
    options.num_workers = workers;
    // A quarter-budget forces eviction behind the scan: evict spans show
    // up and the hit/stall race actually runs.
    options.ram_budget_bytes = kRows * kCols * sizeof(double) / 4;
    ChunkPipeline pipeline({&mapped, 0, kCols * sizeof(double)}, options);
    la::RowChunker chunker(kRows, 64);
    for (size_t pass = 0; pass < 3; ++pass) {
      // A (no-op) retire stage so all four pipeline stages hit the trace.
      pipeline.Run(chunker,
                   ChunkSchedule::Shuffled(chunker.NumChunks(), 100 + pass),
                   [](size_t, size_t, size_t, size_t) {},
                   [](size_t, size_t, size_t, size_t) {});
    }
    const PipelineStats stats = pipeline.stats();
    EXPECT_EQ(stats.prefetches, 3 * chunker.NumChunks())
        << "workers=" << workers;
    ExpectInvariant(stats);
  }
  obs::TraceRecorder::Get().Stop();
  auto json = obs::TraceRecorder::Get().ToJson();
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  auto doc = util::JsonParse(json.value());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const util::Status valid = obs::ValidateTrace(doc.value());
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  auto summary = obs::AnalyzeTrace(doc.value());
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  std::set<std::string> stage_names;
  for (const obs::StageUtilization& stage : summary.value().stages) {
    stage_names.insert(stage.name);
  }
  for (const char* required :
       {"pass", "prefetch", "compute", "retire", "evict"}) {
    EXPECT_EQ(stage_names.count(required), 1u)
        << "stage '" << required << "' missing from the recorded trace";
  }
}

// ---------------------------------------------------------------------------
// Ragged (byte-mapped) chunks: the invariant is a property of positions,
// not bytes, so it must survive chunks of wildly different sizes —
// including zero-byte chunks (all-empty CSR rows), whose prefetch stage
// has no I/O to issue but must still advance the watermark and count.
// ---------------------------------------------------------------------------

/// Maps row r to the byte range [row_offsets[r], row_offsets[r+1]) of the
/// region — the test-local stand-in for core::CsrByteMap, exercising the
/// engine's span plumbing without the file format.
class RaggedByteMap final : public ChunkByteMap {
 public:
  explicit RaggedByteMap(std::vector<uint64_t> row_offsets)
      : row_offsets_(std::move(row_offsets)) {}

  void AppendSpans(size_t row_begin, size_t row_end,
                   std::vector<ByteSpan>* out) const override {
    const uint64_t begin = row_offsets_[row_begin];
    const uint64_t end = row_offsets_[row_end];
    if (end > begin) {
      out->push_back(ByteSpan{begin, end - begin});
    }
  }

  ByteSpan Extent() const override {
    return ByteSpan{row_offsets_.front(),
                    row_offsets_.back() - row_offsets_.front()};
  }

 private:
  std::vector<uint64_t> row_offsets_;
};

class RaggedChunkTest : public CounterInvariantTest {
 protected:
  /// Ragged per-row payloads over a real mapped file: a few giant rows, a
  /// run of empty ones, and a tail of small ones. Returns row_ptr-style
  /// nnz offsets (8 bytes per nnz into the mapped doubles).
  static std::vector<uint64_t> RaggedRowPtr() {
    const std::vector<uint64_t> nnz_per_row = {
        0, 0, 512, 3, 0, 1024, 1, 1, 0, 0, 0, 256, 7, 7, 7, 0, 640, 2, 0, 90};
    std::vector<uint64_t> row_ptr{0};
    for (const uint64_t nnz : nnz_per_row) {
      row_ptr.push_back(row_ptr.back() + nnz);
    }
    return row_ptr;
  }
};

TEST_F(RaggedChunkTest, InvariantHoldsOnRaggedChunksPerScheduleKind) {
  const std::vector<uint64_t> row_ptr = RaggedRowPtr();
  const size_t rows = row_ptr.size() - 1;
  io::MemoryMappedFile mapped = MakeMapped(row_ptr.back(), 1);
  std::vector<uint64_t> offsets(row_ptr.size());
  for (size_t i = 0; i < row_ptr.size(); ++i) {
    offsets[i] = row_ptr[i] * sizeof(double);
  }
  const RaggedByteMap byte_map(offsets);
  // A tight budget yields chunks from one giant row down to all-empty.
  const la::SparseChunker chunker(row_ptr.data(), rows,
                                  300 * sizeof(double), sizeof(double));
  ASSERT_GT(chunker.NumChunks(), 4u);
  for (const ScanOrder order : {ScanOrder::kSequential, ScanOrder::kShuffled,
                                ScanOrder::kStrided}) {
    for (const size_t workers : {size_t{0}, size_t{2}, size_t{4}}) {
      SCOPED_TRACE(std::string(ToString(order)) +
                   " workers=" + std::to_string(workers));
      PipelineOptions options;
      options.readahead_chunks = 2;
      options.num_workers = workers;
      MappedRegion region;
      region.mapping = &mapped;
      region.byte_map = &byte_map;
      ChunkPipeline pipeline(region, options);
      pipeline.Run(chunker, MakeKind(order, chunker.NumChunks()),
                   [](size_t, size_t, size_t, size_t) {});
      const PipelineStats stats = pipeline.stats();
      EXPECT_EQ(stats.prefetches, chunker.NumChunks());
      ExpectInvariant(stats);
    }
  }
}

TEST_F(RaggedChunkTest, ZeroByteChunksStillCountAsPrefetches) {
  // One fat row, then nothing but empty rows: the SparseChunker closes the
  // fat chunk and the trailing empties form a second, zero-byte chunk. Its
  // prefetch has no bytes to move but must still submit, advance the
  // watermark (or the pass deadlocks), and land in exactly one of the
  // three classification counters.
  std::vector<uint64_t> row_ptr{0, 4096};
  for (int i = 0; i < 7; ++i) {
    row_ptr.push_back(4096);
  }
  const size_t rows = row_ptr.size() - 1;
  io::MemoryMappedFile mapped = MakeMapped(4096, 1);
  std::vector<uint64_t> offsets(row_ptr.size());
  for (size_t i = 0; i < row_ptr.size(); ++i) {
    offsets[i] = row_ptr[i] * sizeof(double);
  }
  const RaggedByteMap byte_map(offsets);
  const la::SparseChunker chunker(row_ptr.data(), rows, 64, sizeof(double));
  ASSERT_EQ(chunker.NumChunks(), 2u);
  ASSERT_EQ(chunker.Chunk(1).size(), rows - 1);  // the all-empty chunk
  PipelineOptions options;
  options.readahead_chunks = 1;
  MappedRegion region;
  region.mapping = &mapped;
  region.byte_map = &byte_map;
  ChunkPipeline pipeline(region, options);
  size_t chunks_seen = 0;
  pipeline.Run(chunker, [&](size_t, size_t, size_t) { ++chunks_seen; });
  EXPECT_EQ(chunks_seen, 2u);
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.prefetches, 2u);
  ExpectInvariant(stats);
}

TEST_F(RaggedChunkTest, EvictionUnderRamBudgetKeepsInvariantOnRaggedChunks) {
  const std::vector<uint64_t> row_ptr = RaggedRowPtr();
  const size_t rows = row_ptr.size() - 1;
  io::MemoryMappedFile mapped = MakeMapped(row_ptr.back(), 1);
  std::vector<uint64_t> offsets(row_ptr.size());
  for (size_t i = 0; i < row_ptr.size(); ++i) {
    offsets[i] = row_ptr[i] * sizeof(double);
  }
  const RaggedByteMap byte_map(offsets);
  const la::SparseChunker chunker(row_ptr.data(), rows,
                                  200 * sizeof(double), sizeof(double));
  PipelineOptions options;
  options.readahead_chunks = 3;
  options.num_workers = 2;
  options.ram_budget_bytes = row_ptr.back() * sizeof(double) / 4;
  MappedRegion region;
  region.mapping = &mapped;
  region.byte_map = &byte_map;
  ChunkPipeline pipeline(region, options);
  for (size_t pass = 0; pass < 3; ++pass) {
    pipeline.Run(chunker,
                 ChunkSchedule::Shuffled(chunker.NumChunks(), 17 + pass),
                 [](size_t, size_t, size_t, size_t) {});
  }
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.prefetches, 3 * chunker.NumChunks());
  ExpectInvariant(stats);
}

// ---------------------------------------------------------------------------
// Strided schedules with a lane offset (the cluster's shard order)
// ---------------------------------------------------------------------------

TEST(StridedOffsetTest, OffsetRotatesLaneOrder) {
  // 7 chunks, stride 3: lanes are {0,3,6}, {1,4}, {2,5}. Offset 1 starts
  // at lane 1, then continues through lane 2 and wraps to lane 0.
  const ChunkSchedule schedule = ChunkSchedule::Strided(7, 3, 1);
  const std::vector<size_t> expected = {1, 4, 2, 5, 0, 3, 6};
  ASSERT_EQ(schedule.num_chunks(), 7u);
  for (size_t p = 0; p < expected.size(); ++p) {
    EXPECT_EQ(schedule.At(p), expected[p]) << "position " << p;
  }
}

TEST(StridedOffsetTest, OffsetIsAPermutationAndModuloStride) {
  const ChunkSchedule a = ChunkSchedule::Strided(10, 4, 2);
  const ChunkSchedule b = ChunkSchedule::Strided(10, 4, 6);  // 6 % 4 == 2
  std::set<size_t> seen;
  for (size_t p = 0; p < 10; ++p) {
    EXPECT_TRUE(seen.insert(a.At(p)).second);
    EXPECT_EQ(a.At(p), b.At(p)) << "position " << p;
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(StridedOffsetTest, ZeroOffsetMatchesLegacyOrder) {
  const ChunkSchedule legacy = ChunkSchedule::Strided(9, 4);
  const ChunkSchedule explicit_zero = ChunkSchedule::Strided(9, 4, 0);
  for (size_t p = 0; p < 9; ++p) {
    EXPECT_EQ(legacy.At(p), explicit_zero.At(p));
  }
  // Wide stride with offset 0 keeps the sequential fast path; a nonzero
  // offset is a genuine rotation and must not collapse.
  EXPECT_TRUE(ChunkSchedule::Strided(4, 100, 0).is_sequential());
  const ChunkSchedule rotated = ChunkSchedule::Strided(4, 100, 2);
  EXPECT_FALSE(rotated.is_sequential());
  EXPECT_EQ(rotated.At(0), 2u);
  EXPECT_EQ(rotated.At(1), 3u);
  EXPECT_EQ(rotated.At(2), 0u);
  EXPECT_EQ(rotated.At(3), 1u);
}

TEST(StridedOffsetTest, HugeStrideIsCheapAndRotates) {
  // The lane walk is bounded by the chunk count, not the stride — a
  // pathological stride must neither hang nor allocate per lane.
  const ChunkSchedule rotated =
      ChunkSchedule::Strided(4, size_t{1} << 40, 1);
  ASSERT_EQ(rotated.num_chunks(), 4u);
  EXPECT_EQ(rotated.At(0), 1u);
  EXPECT_EQ(rotated.At(1), 2u);
  EXPECT_EQ(rotated.At(2), 3u);
  EXPECT_EQ(rotated.At(3), 0u);
  // An offset landing beyond the populated lanes wraps through the empty
  // ones straight to lane 0 — the identity, kept on the fast path.
  EXPECT_TRUE(ChunkSchedule::Strided(4, size_t{1} << 40, 10).is_sequential());
}

TEST(StridedOffsetTest, MakeForwardsOffset) {
  const ChunkSchedule made =
      ChunkSchedule::Make(ScanOrder::kStrided, 7, /*seed=*/0, /*stride=*/3,
                          /*offset=*/1);
  const ChunkSchedule direct = ChunkSchedule::Strided(7, 3, 1);
  for (size_t p = 0; p < 7; ++p) {
    EXPECT_EQ(made.At(p), direct.At(p));
  }
}

}  // namespace
}  // namespace m3::exec
