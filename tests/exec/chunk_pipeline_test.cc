#include "exec/chunk_pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <set>
#include <vector>

#include "exec/chunk_map_reduce.h"
#include "io/file.h"
#include "io/io_stats.h"
#include "la/chunker.h"
#include "la/matrix.h"
#include "ml/kmeans.h"
#include "ml/logistic_regression.h"
#include "util/random.h"

namespace m3::exec {
namespace {

// ---------------------------------------------------------------------------
// Ordering and coverage
// ---------------------------------------------------------------------------

TEST(ChunkPipelineTest, SerialRunVisitsEveryChunkInOrder) {
  ChunkPipeline pipeline;  // unbound, serial: pure orchestration
  la::RowChunker chunker(100, 32);
  std::vector<size_t> mapped, retired;
  pipeline.Run(
      chunker,
      [&](size_t c, size_t begin, size_t end) {
        mapped.push_back(c);
        EXPECT_EQ(begin, c * 32);
        EXPECT_EQ(end, std::min<size_t>(100, begin + 32));
      },
      [&](size_t c, size_t, size_t) { retired.push_back(c); });
  const std::vector<size_t> expected = {0, 1, 2, 3};
  EXPECT_EQ(mapped, expected);
  EXPECT_EQ(retired, expected);
}

TEST(ChunkPipelineTest, ParallelRunRetiresInOrder) {
  PipelineOptions options;
  options.num_workers = 4;
  ChunkPipeline pipeline(options);
  la::RowChunker chunker(1000, 7);
  std::atomic<size_t> map_calls{0};
  std::vector<size_t> retired;
  pipeline.Run(
      chunker, [&](size_t, size_t, size_t) { ++map_calls; },
      [&](size_t c, size_t, size_t) { retired.push_back(c); });
  EXPECT_EQ(map_calls.load(), chunker.NumChunks());
  ASSERT_EQ(retired.size(), chunker.NumChunks());
  for (size_t i = 0; i < retired.size(); ++i) {
    EXPECT_EQ(retired[i], i);  // strictly ascending despite parallel maps
  }
}

TEST(ChunkPipelineTest, ZeroChunksIsANoOp) {
  ChunkPipeline pipeline;
  la::RowChunker chunker(0, 16);
  size_t calls = 0;
  pipeline.Run(chunker, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(pipeline.stats().passes, 1u);
  EXPECT_EQ(pipeline.stats().chunks, 0u);
}

TEST(ChunkPipelineTest, RunPassWithoutPipelineIsSerialInOrder) {
  la::RowChunker chunker(10, 3);
  std::vector<std::pair<char, size_t>> events;
  RunPass(
      nullptr, chunker,
      [&](size_t c, size_t, size_t) { events.emplace_back('m', c); },
      [&](size_t c, size_t, size_t) { events.emplace_back('r', c); });
  ASSERT_EQ(events.size(), 8u);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(events[2 * c], std::make_pair('m', c));
    EXPECT_EQ(events[2 * c + 1], std::make_pair('r', c));
  }
}

// ---------------------------------------------------------------------------
// Map-reduce determinism
// ---------------------------------------------------------------------------

/// A floating-point reduction whose result depends on merge order: summing
/// terms of wildly different magnitudes. Any reordering of the merges
/// changes the rounded bits, so bitwise equality across worker counts
/// proves the engine's in-order merge guarantee.
double IllConditionedSum(ChunkPipeline* pipeline) {
  la::RowChunker chunker(4096, 13);
  double total = 0;
  MapReduceChunks<double>(
      pipeline, chunker,
      [](size_t, size_t begin, size_t end) {
        double partial = 0;
        for (size_t r = begin; r < end; ++r) {
          partial += (r % 2 == 0 ? 1.0 : -1.0) *
                     std::pow(10.0, static_cast<double>(r % 17) - 8.0);
        }
        return partial;
      },
      [&](size_t, double&& partial) { total += partial; });
  return total;
}

TEST(ChunkMapReduceTest, BitIdenticalAcrossWorkerCounts) {
  const double serial = IllConditionedSum(nullptr);
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    PipelineOptions options;
    options.num_workers = workers;
    ChunkPipeline pipeline(options);
    const double parallel = IllConditionedSum(&pipeline);
    // Bitwise, not approximate: the merge sequence must be identical.
    EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof(double)), 0)
        << "workers=" << workers << " serial=" << serial
        << " parallel=" << parallel;
  }
}

TEST(ChunkMapReduceTest, SlotsAreReleasedAndReused) {
  PipelineOptions options;
  options.num_workers = 2;
  ChunkPipeline pipeline(options);
  // Far more chunks than in-flight slots: exercises slot reuse.
  la::RowChunker chunker(10000, 10);
  ASSERT_GT(chunker.NumChunks(), pipeline.max_in_flight());
  std::set<size_t> seen;
  uint64_t row_total = 0;
  MapReduceChunks<uint64_t>(
      &pipeline, chunker,
      [](size_t, size_t begin, size_t end) {
        uint64_t sum = 0;
        for (size_t r = begin; r < end; ++r) {
          sum += r;
        }
        return sum;
      },
      [&](size_t chunk, uint64_t&& partial) {
        EXPECT_TRUE(seen.insert(chunk).second);  // each chunk reduced once
        row_total += partial;
      });
  EXPECT_EQ(seen.size(), chunker.NumChunks());
  EXPECT_EQ(row_total, uint64_t{10000} * 9999 / 2);
}

// ---------------------------------------------------------------------------
// Trainer determinism through the engine (acceptance criterion)
// ---------------------------------------------------------------------------

/// Deterministic synthetic binary-classification data.
void MakeClassificationData(size_t n, size_t d, la::Matrix* x, la::Vector* y) {
  util::Rng rng(7);
  *x = la::Matrix(n, d);
  *y = la::Vector(n);
  for (size_t r = 0; r < n; ++r) {
    double score = 0;
    for (size_t c = 0; c < d; ++c) {
      const double v = rng.Uniform() * 2.0 - 1.0;
      (*x)(r, c) = v;
      score += (c % 2 == 0 ? 1.0 : -0.5) * v;
    }
    (*y)[r] = score > 0 ? 1.0 : 0.0;
  }
}

TEST(ChunkMapReduceTest, LogisticRegressionBitIdenticalAt1And4Workers) {
  la::Matrix x;
  la::Vector y;
  MakeClassificationData(600, 12, &x, &y);

  auto train = [&](ChunkPipeline* pipeline) {
    ml::LogisticRegressionOptions options;
    options.chunk_rows = 64;  // several chunks per pass
    options.lbfgs.max_iterations = 5;
    options.pipeline = pipeline;
    return ml::LogisticRegression(options)
        .Train(x.View(), y.View())
        .ValueOrDie();
  };

  const ml::LogisticRegressionModel serial = train(nullptr);
  for (size_t workers : {1u, 4u}) {
    PipelineOptions options;
    options.num_workers = workers;
    ChunkPipeline pipeline(options);
    const ml::LogisticRegressionModel model = train(&pipeline);
    ASSERT_EQ(model.weights.size(), serial.weights.size());
    EXPECT_EQ(std::memcmp(model.weights.data(), serial.weights.data(),
                          serial.weights.size() * sizeof(double)),
              0)
        << "workers=" << workers;
    EXPECT_EQ(
        std::memcmp(&model.intercept, &serial.intercept, sizeof(double)), 0);
  }
}

TEST(ChunkMapReduceTest, KMeansBitIdenticalAt1And4Workers) {
  la::Matrix x;
  la::Vector y_unused;
  MakeClassificationData(500, 8, &x, &y_unused);

  auto cluster = [&](ChunkPipeline* pipeline) {
    ml::KMeansOptions options;
    options.k = 4;
    options.max_iterations = 6;
    options.chunk_rows = 64;
    options.seed = 123;
    options.pipeline = pipeline;
    return ml::KMeans(options).Cluster(x.View()).ValueOrDie();
  };

  const ml::KMeansResult serial = cluster(nullptr);
  for (size_t workers : {1u, 4u}) {
    PipelineOptions options;
    options.num_workers = workers;
    ChunkPipeline pipeline(options);
    const ml::KMeansResult result = cluster(&pipeline);
    ASSERT_EQ(result.centers.rows(), serial.centers.rows());
    EXPECT_EQ(std::memcmp(result.centers.data(), serial.centers.data(),
                          serial.centers.rows() * serial.centers.cols() *
                              sizeof(double)),
              0)
        << "workers=" << workers;
    EXPECT_EQ(std::memcmp(&result.inertia, &serial.inertia, sizeof(double)),
              0);
  }
}

// ---------------------------------------------------------------------------
// Bound pipelines: prefetch and RAM-budget eviction
// ---------------------------------------------------------------------------

class BoundPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_exec_test_" +
           std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Maps a file of `rows` rows of `row_doubles` doubles each.
  io::MemoryMappedFile MakeMapped(size_t rows, size_t row_doubles) {
    const std::string path = dir_ + "/data.bin";
    std::vector<double> values(rows * row_doubles);
    std::iota(values.begin(), values.end(), 0.0);
    std::string bytes(reinterpret_cast<const char*>(values.data()),
                      values.size() * sizeof(double));
    EXPECT_TRUE(io::WriteStringToFile(path, bytes).ok());
    return io::MemoryMappedFile::Map(path).ValueOrDie();
  }

  std::string dir_;
};

TEST_F(BoundPipelineTest, PrefetchStageIssuesReadahead) {
  const size_t kRows = 1024, kRowDoubles = 64;
  io::MemoryMappedFile mapped = MakeMapped(kRows, kRowDoubles);
  MappedRegion region{&mapped, 0, kRowDoubles * sizeof(double)};
  PipelineOptions options;
  options.readahead_chunks = 3;
  ChunkPipeline pipeline(region, options);

  la::RowChunker chunker(kRows, 128);
  uint64_t checksum = 0;
  pipeline.Run(chunker, [&](size_t, size_t begin, size_t end) {
    const double* data = mapped.As<const double>();
    for (size_t r = begin; r < end; ++r) {
      checksum += static_cast<uint64_t>(data[r * kRowDoubles]);
    }
  });
  EXPECT_GT(checksum, 0u);
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(stats.chunks, chunker.NumChunks());
  // Every chunk gets one WILLNEED.
  EXPECT_EQ(stats.prefetches, chunker.NumChunks());
  EXPECT_EQ(stats.prefetch_bytes, kRows * kRowDoubles * sizeof(double));
  // Chunks past the warm-up window (the first `readahead_chunks`, whose
  // prefetch has no compute lead time) are classified exactly once.
  EXPECT_EQ(stats.prefetch_hits + stats.stalls, chunker.NumChunks() - 3);
}

TEST_F(BoundPipelineTest, RamBudgetEvictionHonored) {
  const size_t kRows = 2048, kRowDoubles = 64;
  const uint64_t kRowBytes = kRowDoubles * sizeof(double);
  io::MemoryMappedFile mapped = MakeMapped(kRows, kRowDoubles);
  MappedRegion region{&mapped, 0, kRowBytes};
  PipelineOptions options;
  options.readahead_chunks = 1;
  // Budget of 256 rows against a 2048-row scan: most of the region must
  // be evicted behind the cursor.
  options.ram_budget_bytes = 256 * kRowBytes;
  options.synchronous_eviction = true;
  ChunkPipeline pipeline(region, options);

  la::RowChunker chunker(kRows, 128);
  pipeline.Run(chunker, [&](size_t, size_t begin, size_t end) {
    const volatile double* data = mapped.As<const double>();
    for (size_t r = begin; r < end; ++r) {
      (void)data[r * kRowDoubles];
    }
  });
  const PipelineStats stats = pipeline.stats();
  EXPECT_GT(stats.evictions, 0u);
  // Everything more than 256 rows behind the final cursor is dropped.
  EXPECT_EQ(stats.bytes_evicted, (kRows - 256) * kRowBytes);
}

TEST_F(BoundPipelineTest, EvictionTrailsTheBudgetWindowExactly) {
  const size_t kRows = 100, kRowDoubles = 16;
  const uint64_t kRowBytes = kRowDoubles * sizeof(double);
  io::MemoryMappedFile mapped = MakeMapped(kRows, kRowDoubles);
  MappedRegion region{&mapped, 0, kRowBytes};
  PipelineOptions options;
  options.readahead_chunks = 0;  // isolate the evict stage
  options.ram_budget_bytes = 20 * kRowBytes;
  options.synchronous_eviction = true;
  ChunkPipeline pipeline(region, options);

  std::vector<uint64_t> evicted_after;
  la::RowChunker chunker(kRows, 10);
  pipeline.Run(
      chunker, [&](size_t, size_t, size_t) {},
      [&](size_t, size_t, size_t) {
        evicted_after.push_back(pipeline.stats().bytes_evicted);
      });
  // The evict stage runs after each retire, so the value observed at
  // retire of chunk i covers chunks 0..i-1: nothing until the 20-row
  // budget is exceeded, then exactly one 10-row chunk per step.
  ASSERT_EQ(evicted_after.size(), 10u);
  EXPECT_EQ(evicted_after[0], 0u);
  EXPECT_EQ(evicted_after[1], 0u);
  EXPECT_EQ(evicted_after[2], 0u);
  for (size_t i = 3; i < 10; ++i) {
    EXPECT_EQ(evicted_after[i], (i - 2) * 10 * kRowBytes) << "chunk " << i;
  }
  // After the pass: everything more than 20 rows behind the end is gone.
  EXPECT_EQ(pipeline.stats().bytes_evicted, (kRows - 20) * kRowBytes);
}

TEST_F(BoundPipelineTest, PassesReportedToGlobalExecCounters) {
  io::ResetExecCounters();
  const size_t kRows = 512, kRowDoubles = 32;
  io::MemoryMappedFile mapped = MakeMapped(kRows, kRowDoubles);
  MappedRegion region{&mapped, 0, kRowDoubles * sizeof(double)};
  ChunkPipeline pipeline(region, PipelineOptions());
  la::RowChunker chunker(kRows, 64);
  pipeline.Run(chunker, [](size_t, size_t, size_t) {});
  pipeline.Run(chunker, [](size_t, size_t, size_t) {});
  const io::ExecCounters counters = io::GlobalExecCounters();
  EXPECT_EQ(counters.passes, 2u);
  EXPECT_EQ(counters.chunks, 2 * chunker.NumChunks());
  EXPECT_EQ(counters.prefetches, 2 * chunker.NumChunks());
}

}  // namespace
}  // namespace m3::exec
