// Engine-equivalence suite: the simulated cluster must produce *bitwise*
// identical numerical results whether its partition tasks run through the
// inline serial loop (pipelines off — the reference semantics) or through
// real per-partition ChunkPipelines at any worker count. Chunk partials
// always fold on the driving thread in the same strided task order, so the
// floating-point merge sequence never changes; these tests pin that
// guarantee for distributed LR and k-means, in memory and mmap-backed, and
// check the measured spill/refault accounting that only the pipelined path
// produces.

#include "cluster/spark_cluster.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/mapped_dataset.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "io/file.h"
#include "la/blas.h"

namespace m3::cluster {
namespace {

ClusterConfig SmallCluster(size_t instances) {
  ClusterConfig config;
  config.num_instances = instances;
  config.cores_per_instance = 4;
  config.instance_ram_bytes = 1ull << 30;
  config.local_cpu_seconds_per_byte = 1e-9;
  return config;
}

ClusterConfig PipelinedConfig(size_t instances, size_t workers,
                              uint64_t chunk_rows = 64) {
  ClusterConfig config = SmallCluster(instances);
  config.exec.use_pipelines = true;
  config.exec.pipeline_workers = workers;
  config.exec.chunk_rows = chunk_rows;
  return config;
}

bool BitwiseEqual(la::ConstVectorView a, la::ConstVectorView b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

ml::LbfgsOptions FixedLbfgs() {
  ml::LbfgsOptions lbfgs;
  lbfgs.max_iterations = 8;
  lbfgs.gradient_tolerance = 0;
  lbfgs.objective_tolerance = 0;
  return lbfgs;
}

// ---------------------------------------------------------------------------
// In-memory equivalence at pipeline_workers {0, 2, 4}
// ---------------------------------------------------------------------------

TEST(EngineEquivalenceTest, LrBitwiseIdenticalAcrossEngineConfigs) {
  data::SeparableResult sep = data::LinearlySeparable(1500, 12, 0.05, 42);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());

  // Both modes must chunk identically; only the execution engine differs.
  ClusterConfig reference_config = SmallCluster(4);
  reference_config.exec.chunk_rows = 64;
  SparkCluster reference(reference_config);
  auto baseline =
      reference.RunLogisticRegression(sep.data.features, y, 1e-4, FixedLbfgs())
          .ValueOrDie();
  EXPECT_TRUE(baseline.stats.instance_exec.empty());  // measured path off

  for (const size_t workers : {size_t{0}, size_t{2}, size_t{4}}) {
    SparkCluster pipelined(PipelinedConfig(4, workers));
    auto result = pipelined
                      .RunLogisticRegression(sep.data.features, y, 1e-4,
                                             FixedLbfgs())
                      .ValueOrDie();
    EXPECT_TRUE(BitwiseEqual(baseline.model.weights, result.model.weights))
        << "workers=" << workers;
    EXPECT_EQ(std::memcmp(&baseline.model.intercept, &result.model.intercept,
                          sizeof(double)),
              0)
        << "workers=" << workers;
    EXPECT_EQ(baseline.optimization.iterations,
              result.optimization.iterations);
    // The pipelined run measured something (even unbound, compute passes
    // are driven through real pipelines).
    ASSERT_EQ(result.stats.instance_exec.size(), 4u);
    uint64_t measured_chunks = 0;
    for (const InstanceExecStats& instance : result.stats.instance_exec) {
      measured_chunks += instance.cached.chunks + instance.spilled.chunks;
    }
    EXPECT_GT(measured_chunks, 0u);
  }
}

TEST(EngineEquivalenceTest, KMeansBitwiseIdenticalAcrossEngineConfigs) {
  data::BlobsResult blobs = data::GaussianBlobs(1200, 6, 5, 1.0, 21);
  la::Matrix init(5, 6);
  for (size_t c = 0; c < 5; ++c) {
    la::Copy(blobs.data.features.Row(c * 240), init.Row(c));
  }
  ml::KMeansOptions options;
  options.k = 5;
  options.max_iterations = 6;
  options.tolerance = 0;
  options.initial_centers = &init;

  ClusterConfig reference_config = SmallCluster(4);
  reference_config.exec.chunk_rows = 64;
  auto baseline = SparkCluster(reference_config)
                      .RunKMeans(blobs.data.features, options)
                      .ValueOrDie();

  for (const size_t workers : {size_t{0}, size_t{2}, size_t{4}}) {
    auto result = SparkCluster(PipelinedConfig(4, workers))
                      .RunKMeans(blobs.data.features, options)
                      .ValueOrDie();
    ASSERT_EQ(result.clustering.centers.rows(), 5u);
    EXPECT_EQ(std::memcmp(baseline.clustering.centers.data(),
                          result.clustering.centers.data(),
                          5 * 6 * sizeof(double)),
              0)
        << "workers=" << workers;
    EXPECT_EQ(baseline.clustering.inertia, result.clustering.inertia);
    EXPECT_EQ(baseline.clustering.iterations, result.clustering.iterations);
  }
}

TEST(EngineEquivalenceTest, ChunkedReferenceStaysCloseToWholePartitionMath) {
  // Chunking the partition reduction reorders FP addition; the result must
  // stay within optimization noise of the single-machine trainer (the
  // existing accuracy contract).
  data::SeparableResult sep = data::LinearlySeparable(2000, 10, 0.05, 42);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  ml::LbfgsOptions lbfgs = FixedLbfgs();
  lbfgs.max_iterations = 10;

  auto distributed = SparkCluster(PipelinedConfig(4, 2))
                         .RunLogisticRegression(sep.data.features, y, 1e-4,
                                                lbfgs)
                         .ValueOrDie();
  ml::LogisticRegressionOptions local_options;
  local_options.l2 = 1e-4;
  local_options.lbfgs = lbfgs;
  auto local = ml::LogisticRegression(local_options)
                   .Train(sep.data.features, y)
                   .ValueOrDie();
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(distributed.model.weights[i], local.weights[i], 1e-6);
  }
  EXPECT_NEAR(distributed.model.intercept, local.intercept, 1e-6);
}

// ---------------------------------------------------------------------------
// Mmap-backed equivalence + measured spill accounting
// ---------------------------------------------------------------------------

class MappedClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_cluster_equiv_" +
           std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
    data::SeparableResult sep = data::LinearlySeparable(1600, 16, 0.05, 7);
    path_ = dir_ + "/cluster.m3";
    ASSERT_TRUE(data::WriteDataset(path_, sep.data.features, sep.data.labels,
                                   2)
                    .ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static exec::MappedRegion RegionOf(const MappedDataset& dataset) {
    exec::MappedRegion region;
    region.mapping = &dataset.mapping();
    region.base_offset = dataset.meta().features_offset;
    region.row_bytes = dataset.cols() * sizeof(double);
    return region;
  }

  std::string dir_;
  std::string path_;
};

TEST_F(MappedClusterTest, MmapBackedLrBitwiseMatchesInlineReference) {
  auto dataset = MappedDataset::Open(path_).ValueOrDie();
  const std::vector<double> labels = dataset.CopyLabels();
  const la::ConstVectorView y(labels.data(), labels.size());

  ClusterConfig reference_config = SmallCluster(4);
  reference_config.exec.chunk_rows = 50;
  auto baseline = SparkCluster(reference_config)
                      .RunLogisticRegression(dataset.features(), y, 1e-4,
                                             FixedLbfgs())
                      .ValueOrDie();

  for (const size_t workers : {size_t{0}, size_t{2}, size_t{4}}) {
    ClusterConfig config = PipelinedConfig(4, workers, 50);
    auto result = SparkCluster(config)
                      .RunLogisticRegression(dataset.features(), y, 1e-4,
                                             FixedLbfgs(), RegionOf(dataset))
                      .ValueOrDie();
    EXPECT_TRUE(BitwiseEqual(baseline.model.weights, result.model.weights))
        << "workers=" << workers;
  }
}

TEST_F(MappedClusterTest, SpilledPartitionsRefaultEveryJobWhileCachedStay) {
  M3Options open_options;
  auto dataset = MappedDataset::Open(path_, open_options).ValueOrDie();
  const std::vector<double> labels = dataset.CopyLabels();
  const la::ConstVectorView y(labels.data(), labels.size());

  // Size the simulated cache at ~40% of the dataset so a fixed subset of
  // partitions spills.
  ClusterConfig config = PipelinedConfig(2, 0, 50);
  config.cache_fraction = 1.0;
  config.instance_ram_bytes = dataset.feature_bytes() * 2 / 10;  // x2 = 40%
  SparkCluster cluster(config);

  const std::vector<Partition> partitions = cluster.PlanPartitions(
      dataset.rows(), dataset.cols() * sizeof(double));
  const size_t spilled = CountSpilled(partitions);
  ASSERT_GT(spilled, 0u);
  ASSERT_LT(spilled, partitions.size());

  auto result = cluster
                    .RunLogisticRegression(dataset.features(), y, 1e-4,
                                           FixedLbfgs(), RegionOf(dataset))
                    .ValueOrDie();
  ASSERT_EQ(result.stats.instance_exec.size(), 2u);

  uint64_t total_refaults = 0;
  uint64_t refault_bytes = 0;
  for (const InstanceExecStats& instance : result.stats.instance_exec) {
    total_refaults += instance.spill_refaults;
    refault_bytes += instance.spill_refault_bytes;
    // Cached partitions are never force-evicted; their measured passes
    // run every job.
    EXPECT_GT(instance.cached.passes, 0u);
    EXPECT_EQ(instance.cached.passes % result.stats.jobs, 0u);
    // The cached set fits its share of the instance budget (that is what
    // made it cached), so the pinned pages never churn; spilled scans run
    // under the leftover budget and evict as they go.
    EXPECT_EQ(instance.cached.evictions, 0u);
    EXPECT_GT(instance.spilled.evictions, 0u);
    // The accounting invariant holds per instance and per cache class.
    EXPECT_EQ(instance.cached.prefetches,
              instance.cached.prefetch_hits + instance.cached.stalls +
                  instance.cached.prefetch_unclassified);
    EXPECT_EQ(instance.spilled.prefetches,
              instance.spilled.prefetch_hits + instance.spilled.stalls +
                  instance.spilled.prefetch_unclassified);
  }
  // One forced re-fault per spilled partition per job: the counter grows
  // with every job.
  EXPECT_GT(result.stats.jobs, 1u);
  EXPECT_EQ(total_refaults, spilled * result.stats.jobs);
  EXPECT_GT(refault_bytes, 0u);

  // A shorter run re-faults proportionally less (growth per job, not a
  // one-time cost).
  ml::LbfgsOptions one_step = FixedLbfgs();
  one_step.max_iterations = 1;
  auto short_run = cluster
                       .RunLogisticRegression(dataset.features(), y, 1e-4,
                                              one_step, RegionOf(dataset))
                       .ValueOrDie();
  uint64_t short_refaults = 0;
  for (const InstanceExecStats& instance : short_run.stats.instance_exec) {
    short_refaults += instance.spill_refaults;
  }
  EXPECT_EQ(short_refaults, spilled * short_run.stats.jobs);
  EXPECT_LT(short_refaults, total_refaults);
}

TEST_F(MappedClusterTest, TaskOrderIsStridedByInstance) {
  // The strided interleaving visits instance 0's partitions first, then
  // instance 1's, ... — each instance scanning its own shard (stride =
  // instance count, offset = instance id via round-robin assignment).
  ClusterConfig config = PipelinedConfig(3, 0, 0);
  SparkCluster cluster(config);
  const std::vector<Partition> partitions =
      cluster.PlanPartitions(1200, 16 * sizeof(double));
  const exec::ChunkSchedule order =
      exec::ChunkSchedule::Strided(partitions.size(), config.num_instances);
  size_t last_instance = 0;
  for (size_t pos = 0; pos < order.num_chunks(); ++pos) {
    const size_t instance = partitions[order.At(pos)].instance;
    EXPECT_GE(instance, last_instance) << "instances interleave";
    last_instance = instance;
  }
  EXPECT_EQ(last_instance, config.num_instances - 1);
}

TEST_F(MappedClusterTest, RejectsMismatchedRegion) {
  auto dataset = MappedDataset::Open(path_).ValueOrDie();
  const std::vector<double> labels = dataset.CopyLabels();
  const la::ConstVectorView y(labels.data(), labels.size());
  exec::MappedRegion bogus = RegionOf(dataset);
  bogus.row_bytes = 8;  // not cols * sizeof(double)
  auto result = SparkCluster(PipelinedConfig(2, 0))
                    .RunLogisticRegression(dataset.features(), y, 0.0,
                                           FixedLbfgs(), bogus);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace m3::cluster
