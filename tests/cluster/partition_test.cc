#include "cluster/partition.h"

#include <gtest/gtest.h>

namespace m3::cluster {
namespace {

TEST(PartitionTest, TilesRowsExactly) {
  auto partitions = MakePartitions(1000, 8, 4, 1000);
  ASSERT_EQ(partitions.size(), 8u);
  size_t cursor = 0;
  for (const Partition& p : partitions) {
    EXPECT_EQ(p.row_begin, cursor);
    EXPECT_GT(p.row_end, p.row_begin);
    cursor = p.row_end;
  }
  EXPECT_EQ(cursor, 1000u);
}

TEST(PartitionTest, NearEqualSizes) {
  auto partitions = MakePartitions(10, 3, 2, 10);
  ASSERT_EQ(partitions.size(), 3u);
  EXPECT_EQ(partitions[0].rows(), 4u);
  EXPECT_EQ(partitions[1].rows(), 3u);
  EXPECT_EQ(partitions[2].rows(), 3u);
}

TEST(PartitionTest, RoundRobinInstanceAssignment) {
  auto partitions = MakePartitions(100, 6, 3, 100);
  EXPECT_EQ(partitions[0].instance, 0u);
  EXPECT_EQ(partitions[1].instance, 1u);
  EXPECT_EQ(partitions[2].instance, 2u);
  EXPECT_EQ(partitions[3].instance, 0u);
}

TEST(PartitionTest, CacheCapacityMarksSpill) {
  // Capacity for 50 of 100 rows: about half the partitions spill.
  auto partitions = MakePartitions(100, 10, 2, 50);
  size_t cached_rows = 0;
  size_t spilled = 0;
  for (const Partition& p : partitions) {
    if (p.cached) {
      cached_rows += p.rows();
    } else {
      ++spilled;
    }
  }
  EXPECT_LE(cached_rows, 50u);
  EXPECT_EQ(spilled, 5u);
}

TEST(PartitionTest, FullCacheMeansNoSpill) {
  auto partitions = MakePartitions(100, 10, 2, 100);
  for (const Partition& p : partitions) {
    EXPECT_TRUE(p.cached);
  }
}

TEST(PartitionTest, MorePartitionsThanRowsClamps) {
  auto partitions = MakePartitions(3, 10, 2, 3);
  EXPECT_EQ(partitions.size(), 3u);
  for (const Partition& p : partitions) {
    EXPECT_EQ(p.rows(), 1u);
  }
}

TEST(PartitionTest, DegenerateInputsYieldEmpty) {
  EXPECT_TRUE(MakePartitions(0, 4, 2, 10).empty());
  EXPECT_TRUE(MakePartitions(10, 0, 2, 10).empty());
  EXPECT_TRUE(MakePartitions(10, 4, 0, 10).empty());
}

}  // namespace
}  // namespace m3::cluster
