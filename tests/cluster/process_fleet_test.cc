// Process-fleet suite: the forked worker fleet must be *bitwise*
// interchangeable with the in-process SparkCluster simulator — same
// partition plan, same strided fold order, same la:: kernels — at every
// fleet size, for LR and k-means alike. The crash tests pin the failure
// contract: a SIGKILLed or hung worker turns into a Status error within
// the phase deadline, with the whole fleet reaped (no zombies, no parent
// hang) and the partial stats marked incomplete.

#include "cluster/process_fleet.h"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "cluster/spark_cluster.h"
#include "core/mapped_dataset.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "io/file.h"
#include "la/blas.h"
#include "util/stopwatch.h"

namespace m3::cluster {
namespace {

ClusterConfig FleetConfig(size_t instances, bool pipelines,
                          uint64_t chunk_rows = 50) {
  ClusterConfig config;
  config.num_instances = instances;
  config.cores_per_instance = 4;
  config.instance_ram_bytes = 1ull << 30;
  config.local_cpu_seconds_per_byte = 1e-9;
  config.exec.use_pipelines = pipelines;
  config.exec.chunk_rows = chunk_rows;
  return config;
}

bool BitwiseEqual(la::ConstVectorView a, la::ConstVectorView b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

ml::LbfgsOptions FixedLbfgs() {
  ml::LbfgsOptions lbfgs;
  lbfgs.max_iterations = 8;
  lbfgs.gradient_tolerance = 0;
  lbfgs.objective_tolerance = 0;
  return lbfgs;
}

ml::KMeansOptions FixedKMeans() {
  ml::KMeansOptions options;
  options.k = 5;
  options.max_iterations = 6;
  options.tolerance = 0;
  return options;
}

class ProcessFleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_process_fleet_" +
           std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
    data::SeparableResult sep = data::LinearlySeparable(1600, 16, 0.05, 7);
    path_ = dir_ + "/fleet.m3";
    ASSERT_TRUE(data::WriteDataset(path_, sep.data.features, sep.data.labels,
                                   2)
                    .ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static exec::MappedRegion RegionOf(const MappedDataset& dataset) {
    exec::MappedRegion region;
    region.mapping = &dataset.mapping();
    region.base_offset = dataset.meta().features_offset;
    region.row_bytes = dataset.cols() * sizeof(double);
    return region;
  }

  // The tier-1 tree must never leak children: every test ends with the
  // whole process childless (a zombie here is a reaping bug in the fleet).
  static void ExpectNoChildren() {
    errno = 0;
    EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
    EXPECT_EQ(errno, ECHILD);
  }

  std::string dir_;
  std::string path_;
};

// ---------------------------------------------------------------------------
// Bitwise equivalence with the simulator
// ---------------------------------------------------------------------------

TEST_F(ProcessFleetTest, LrBitwiseMatchesSimulatorAcrossFleetSizes) {
  for (const size_t instances : {size_t{1}, size_t{2}, size_t{4}}) {
    const ClusterConfig config = FleetConfig(instances, /*pipelines=*/true);

    // Fork the fleet FIRST: Spawn() must precede any parent threads, and
    // the simulator's pipeline pools below are all joined by the time the
    // fleet runs its own job.
    FleetOptions fleet_options;
    fleet_options.config = config;
    fleet_options.phase_deadline_seconds = 120;
    auto fleet = ProcessFleet::Spawn(path_, fleet_options).ValueOrDie();
    ASSERT_EQ(fleet->pids().size(), instances);

    auto dataset = MappedDataset::Open(path_).ValueOrDie();
    const std::vector<double> labels = dataset.CopyLabels();
    const la::ConstVectorView y(labels.data(), labels.size());
    auto baseline = SparkCluster(config)
                        .RunLogisticRegression(dataset.features(), y, 1e-4,
                                               FixedLbfgs(), RegionOf(dataset))
                        .ValueOrDie();

    auto result = fleet->RunLogisticRegression(1e-4, FixedLbfgs())
                      .ValueOrDie();
    EXPECT_TRUE(BitwiseEqual(baseline.model.weights, result.model.weights))
        << "instances=" << instances;
    EXPECT_EQ(std::memcmp(&baseline.model.intercept, &result.model.intercept,
                          sizeof(double)),
              0)
        << "instances=" << instances;
    EXPECT_EQ(baseline.optimization.iterations,
              result.optimization.iterations);

    // The workers' pipelines measured real chunk traffic, and the stats
    // crossed the shm boundary intact.
    ASSERT_EQ(result.stats.instance_exec.size(), instances);
    uint64_t measured_chunks = 0;
    for (const InstanceExecStats& instance : result.stats.instance_exec) {
      EXPECT_FALSE(instance.incomplete);
      measured_chunks += instance.cached.chunks + instance.spilled.chunks;
    }
    EXPECT_GT(measured_chunks, 0u);
    EXPECT_FALSE(result.stats.incomplete);

    EXPECT_TRUE(fleet->Shutdown().ok());
    EXPECT_TRUE(fleet->Shutdown().ok());  // idempotent
    EXPECT_TRUE(fleet->pids().empty());
    ExpectNoChildren();
  }
}

TEST_F(ProcessFleetTest, LrBitwiseMatchesSimulatorWithPipelinesOff) {
  const ClusterConfig config = FleetConfig(2, /*pipelines=*/false);
  FleetOptions fleet_options;
  fleet_options.config = config;
  fleet_options.phase_deadline_seconds = 120;
  auto fleet = ProcessFleet::Spawn(path_, fleet_options).ValueOrDie();

  auto dataset = MappedDataset::Open(path_).ValueOrDie();
  const std::vector<double> labels = dataset.CopyLabels();
  const la::ConstVectorView y(labels.data(), labels.size());
  auto baseline = SparkCluster(config)
                      .RunLogisticRegression(dataset.features(), y, 1e-4,
                                             FixedLbfgs(), RegionOf(dataset))
                      .ValueOrDie();

  auto result = fleet->RunLogisticRegression(1e-4, FixedLbfgs()).ValueOrDie();
  EXPECT_TRUE(BitwiseEqual(baseline.model.weights, result.model.weights));
  EXPECT_TRUE(fleet->Shutdown().ok());
  ExpectNoChildren();
}

TEST_F(ProcessFleetTest, KMeansBitwiseMatchesSimulatorAcrossFleetSizes) {
  for (const size_t instances : {size_t{1}, size_t{2}, size_t{4}}) {
    const ClusterConfig config = FleetConfig(instances, /*pipelines=*/true);
    FleetOptions fleet_options;
    fleet_options.config = config;
    fleet_options.phase_deadline_seconds = 120;
    auto fleet = ProcessFleet::Spawn(path_, fleet_options).ValueOrDie();

    auto dataset = MappedDataset::Open(path_).ValueOrDie();
    auto baseline = SparkCluster(config)
                        .RunKMeans(dataset.features(), FixedKMeans(),
                                   RegionOf(dataset))
                        .ValueOrDie();

    auto result = fleet->RunKMeans(FixedKMeans()).ValueOrDie();
    ASSERT_EQ(baseline.clustering.centers.rows(),
              result.clustering.centers.rows());
    for (size_t c = 0; c < result.clustering.centers.rows(); ++c) {
      EXPECT_TRUE(BitwiseEqual(baseline.clustering.centers.Row(c),
                               result.clustering.centers.Row(c)))
          << "instances=" << instances << " center=" << c;
    }
    ASSERT_EQ(baseline.clustering.inertia_history.size(),
              result.clustering.inertia_history.size());
    for (size_t i = 0; i < result.clustering.inertia_history.size(); ++i) {
      EXPECT_EQ(std::memcmp(&baseline.clustering.inertia_history[i],
                            &result.clustering.inertia_history[i],
                            sizeof(double)),
                0)
          << "instances=" << instances << " iteration=" << i;
    }
    EXPECT_EQ(baseline.clustering.iterations, result.clustering.iterations);

    EXPECT_TRUE(fleet->Shutdown().ok());
    ExpectNoChildren();
  }
}

// ---------------------------------------------------------------------------
// Crash and hang injection
// ---------------------------------------------------------------------------

TEST_F(ProcessFleetTest, SigkilledWorkerFailsFastWithoutZombies) {
  FleetOptions fleet_options;
  fleet_options.config = FleetConfig(2, /*pipelines=*/true);
  fleet_options.phase_deadline_seconds = 30;
  auto fleet = ProcessFleet::Spawn(path_, fleet_options).ValueOrDie();
  ASSERT_EQ(fleet->pids().size(), 2u);

  ASSERT_EQ(::kill(fleet->pids()[0], SIGKILL), 0);

  // Death is detected by pipe EOF, far before the deadline — the run must
  // fail promptly, not sit out the full phase budget.
  util::Stopwatch stopwatch;
  auto result = fleet->RunLogisticRegression(1e-4, FixedLbfgs());
  EXPECT_FALSE(result.ok());
  EXPECT_LT(stopwatch.ElapsedSeconds(), fleet_options.phase_deadline_seconds);
  EXPECT_NE(result.status().message().find("died"), std::string::npos)
      << result.status().message();
  // KillAll reaped the zombie with its ORIGINAL death cause.
  EXPECT_NE(result.status().message().find("killed by signal"),
            std::string::npos)
      << result.status().message();

  EXPECT_FALSE(fleet->alive());
  EXPECT_TRUE(fleet->pids().empty());
  ExpectNoChildren();

  // The failed run's partial stats are preserved and flagged.
  EXPECT_TRUE(fleet->last_run_stats().incomplete);
  ASSERT_EQ(fleet->last_run_stats().instance_exec.size(), 2u);
  EXPECT_TRUE(fleet->last_run_stats().instance_exec[0].incomplete);

  // A dead fleet refuses further work instead of hanging.
  auto again = fleet->RunKMeans(FixedKMeans());
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), util::StatusCode::kFailedPrecondition);

  // A fresh fleet over the same dataset still reproduces the simulator
  // bitwise — the crash left no persistent state behind.
  auto dataset = MappedDataset::Open(path_).ValueOrDie();
  const std::vector<double> labels = dataset.CopyLabels();
  const la::ConstVectorView y(labels.data(), labels.size());
  auto baseline = SparkCluster(fleet_options.config)
                      .RunLogisticRegression(dataset.features(), y, 1e-4,
                                             FixedLbfgs(), RegionOf(dataset))
                      .ValueOrDie();
  auto retry_fleet = ProcessFleet::Spawn(path_, fleet_options).ValueOrDie();
  auto retry = retry_fleet->RunLogisticRegression(1e-4, FixedLbfgs())
                   .ValueOrDie();
  EXPECT_TRUE(BitwiseEqual(baseline.model.weights, retry.model.weights));
  EXPECT_TRUE(retry_fleet->Shutdown().ok());
  ExpectNoChildren();
}

TEST_F(ProcessFleetTest, HungWorkerHitsThePhaseDeadline) {
  FleetOptions fleet_options;
  fleet_options.config = FleetConfig(2, /*pipelines=*/true);
  fleet_options.phase_deadline_seconds = 1.5;
  fleet_options.hang_worker = 1;
  auto fleet = ProcessFleet::Spawn(path_, fleet_options).ValueOrDie();

  util::Stopwatch stopwatch;
  auto result = fleet->RunLogisticRegression(1e-4, FixedLbfgs());
  const double elapsed = stopwatch.ElapsedSeconds();
  EXPECT_FALSE(result.ok());
  // The parent waited the phase budget for the hung worker — no more
  // (generous upper slack for loaded CI machines).
  EXPECT_GE(elapsed, 1.0);
  EXPECT_LT(elapsed, 20.0);
  EXPECT_NE(result.status().message().find("deadline"), std::string::npos)
      << result.status().message();

  EXPECT_FALSE(fleet->alive());
  EXPECT_TRUE(fleet->pids().empty());
  EXPECT_TRUE(fleet->last_run_stats().incomplete);
  ASSERT_EQ(fleet->last_run_stats().instance_exec.size(), 2u);
  EXPECT_TRUE(fleet->last_run_stats().instance_exec[1].incomplete);
  ExpectNoChildren();
}

// ---------------------------------------------------------------------------
// Spawn/option validation
// ---------------------------------------------------------------------------

TEST_F(ProcessFleetTest, SpawnRejectsBadOptionsAndMissingDataset) {
  FleetOptions fleet_options;
  fleet_options.config = FleetConfig(2, /*pipelines=*/false);

  FleetOptions bad_deadline = fleet_options;
  bad_deadline.phase_deadline_seconds = 0;
  EXPECT_FALSE(ProcessFleet::Spawn(path_, bad_deadline).ok());

  FleetOptions bad_k = fleet_options;
  bad_k.max_kmeans_k = 0;
  EXPECT_FALSE(ProcessFleet::Spawn(path_, bad_k).ok());

  EXPECT_FALSE(ProcessFleet::Spawn(dir_ + "/missing.m3", fleet_options).ok());
  ExpectNoChildren();
}

TEST_F(ProcessFleetTest, RunKMeansRejectsKBeyondSlotCapacity) {
  FleetOptions fleet_options;
  fleet_options.config = FleetConfig(1, /*pipelines=*/false);
  fleet_options.max_kmeans_k = 4;
  auto fleet = ProcessFleet::Spawn(path_, fleet_options).ValueOrDie();

  ml::KMeansOptions options = FixedKMeans();
  options.k = 5;  // > max_kmeans_k: slots were sized for 4 at Spawn
  auto result = fleet->RunKMeans(options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(fleet->alive());  // a rejected job does not kill the fleet

  options.k = 4;
  EXPECT_TRUE(fleet->RunKMeans(options).ok());
  EXPECT_TRUE(fleet->Shutdown().ok());
  ExpectNoChildren();
}

// ---------------------------------------------------------------------------
// Per-worker trace files
// ---------------------------------------------------------------------------

TEST_F(ProcessFleetTest, WorkersWriteTraceFilesAtShutdown) {
  FleetOptions fleet_options;
  fleet_options.config = FleetConfig(2, /*pipelines=*/true);
  fleet_options.worker_trace_dir = dir_;
  auto fleet = ProcessFleet::Spawn(path_, fleet_options).ValueOrDie();
  ASSERT_TRUE(fleet->RunLogisticRegression(1e-4, FixedLbfgs()).ok());
  EXPECT_TRUE(fleet->Shutdown().ok());
  for (size_t w = 0; w < 2; ++w) {
    const std::string trace = dir_ + "/worker_" + std::to_string(w) + ".json";
    EXPECT_TRUE(std::filesystem::exists(trace)) << trace;
    EXPECT_GT(std::filesystem::file_size(trace), 0u) << trace;
  }
  ExpectNoChildren();
}

}  // namespace
}  // namespace m3::cluster
