#include "cluster/spark_cluster.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "data/synthetic.h"
#include "la/blas.h"
#include "ml/metrics.h"

namespace m3::cluster {
namespace {

ClusterConfig SmallCluster(size_t instances) {
  ClusterConfig config;
  config.num_instances = instances;
  config.cores_per_instance = 4;
  config.instance_ram_bytes = 1ull << 30;
  config.local_cpu_seconds_per_byte = 1e-9;
  return config;
}

TEST(ClusterConfigTest, ValidateCatchesNonsense) {
  EXPECT_TRUE(SmallCluster(4).Validate().ok());
  ClusterConfig config = SmallCluster(4);
  config.num_instances = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallCluster(4);
  config.cache_fraction = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallCluster(4);
  config.jvm_slowdown = -1;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallCluster(4);
  config.local_cpu_seconds_per_byte = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ClusterConfigTest, DerivedQuantities) {
  ClusterConfig config = SmallCluster(4);
  config.partitions_per_core = 2;
  EXPECT_EQ(config.TotalPartitions(), 4 * 4 * 2u);
  EXPECT_EQ(config.CacheCapacityBytes(),
            static_cast<uint64_t>(4.0 * (1ull << 30) * 0.6));
  EXPECT_NE(config.ToString().find("4 instances"), std::string::npos);
}

TEST(ClusterConfigTest, CacheCapacityDoesNotOverflowForLargeFleets) {
  // Regression: instance_ram_bytes * num_instances used to multiply in
  // uint64_t before the double cast — 2^34 bytes x 2^31 instances wrapped
  // to a tiny capacity and the planner cached almost nothing.
  ClusterConfig config = SmallCluster(4);
  config.instance_ram_bytes = 16ull << 30;  // 2^34
  config.num_instances = size_t{1} << 31;   // 2^65 total: wrapped to 0 pre-fix
  config.cache_fraction = 0.25;
  const double expected = 9223372036854775808.0;  // 2^65 * 0.25 = 2^63
  EXPECT_NEAR(static_cast<double>(config.CacheCapacityBytes()), expected,
              expected * 1e-12);
  EXPECT_GT(config.CacheCapacityBytes(), config.instance_ram_bytes);

  // Beyond uint64_t range the capacity saturates instead of narrowing a
  // too-large double back (UB).
  config.num_instances = size_t{1} << 62;
  config.cache_fraction = 1.0;
  EXPECT_EQ(config.CacheCapacityBytes(),
            std::numeric_limits<uint64_t>::max());
}

TEST(ClusterConfigTest, ValidateRejectsPartitionCountOverflow) {
  // TotalPartitions() multiplies three size_t counts; Validate must
  // reject configs whose product would wrap (the audit twin of the
  // CacheCapacityBytes fix — partition counts must stay exact integers).
  ClusterConfig config = SmallCluster(4);
  config.num_instances = size_t{1} << 32;
  config.cores_per_instance = size_t{1} << 32;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallCluster(4);
  config.num_instances = size_t{1} << 40;
  config.cores_per_instance = size_t{1} << 20;
  config.partitions_per_core = size_t{1} << 10;
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_TRUE(SmallCluster(4).Validate().ok());
}

TEST(ClusterConfigTest, ValidateRejectsBadOverlapEfficiency) {
  ClusterConfig config = SmallCluster(4);
  config.overlap_efficiency = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config.overlap_efficiency = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config.overlap_efficiency = 0.0;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ClusterConfigTest, CalibrateFromMeasuredReplacesConstants) {
  ClusterConfig config = SmallCluster(2);
  const double analytic_spill = config.spill_read_bytes_per_sec;

  JobStats measured;
  measured.instance_exec.resize(2);
  for (InstanceExecStats& instance : measured.instance_exec) {
    instance.cached.passes = 10;
    instance.cached.prefetch_bytes = 100ull << 20;
    instance.cached.compute_seconds = 0.8;
    instance.cached.retire_seconds = 0.2;
    instance.cached.prefetch_hits = 90;
    instance.cached.stalls = 10;
    instance.cached.drive_seconds = 1.2;
    instance.spilled.passes = 10;
    instance.spilled.prefetch_bytes = 50ull << 20;
    instance.spilled.compute_seconds = 0.9;  // includes fault-wait time
    instance.spilled.prefetch_seconds = 1.0;  // real read time
    instance.spilled.stalls = 30;
    instance.spilled.prefetch_hits = 10;
    instance.spilled.drive_seconds = 1.4;
  }
  ASSERT_TRUE(config.CalibrateFromMeasured(measured).ok());
  EXPECT_TRUE(config.calibrated_from_measurement);
  // No hardcoded spill constant on the calibrated path: the fitted
  // bandwidth is the spilled partitions' measured prefetch throughput
  // (2 instances x 50 MiB over 2 s of read time = 50 MiB/s).
  EXPECT_NE(config.spill_read_bytes_per_sec, analytic_spill);
  EXPECT_NEAR(config.spill_read_bytes_per_sec,
              static_cast<double>(100ull << 20) / 2.0, 1.0);
  // Overlap = hit fraction of classified chunks: (180+20)/(180+20+20+60).
  EXPECT_NEAR(config.overlap_efficiency, 200.0 / 280.0, 1e-12);
  // Local CPU cost comes from the CACHED class only (warm pages — its
  // compute seconds carry no storage-fault wait): 2 x (0.8 + 0.2) s over
  // 2 x 100 MiB. The spilled class's fault-inflated 0.9 s/instance must
  // not leak into the CPU term (it is charged as spill I/O instead).
  EXPECT_NEAR(config.local_cpu_seconds_per_byte,
              2.0 / static_cast<double>(200ull << 20), 1e-15);
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ClusterConfigTest, CalibrateFromMeasuredRejectsUnmeasuredRuns) {
  ClusterConfig config = SmallCluster(2);
  JobStats empty;
  EXPECT_FALSE(config.CalibrateFromMeasured(empty).ok());
  EXPECT_FALSE(config.calibrated_from_measurement);
  empty.instance_exec.resize(2);  // present but never driven
  EXPECT_FALSE(config.CalibrateFromMeasured(empty).ok());
}

TEST(SparkClusterTest, LrGradientMatchesSingleMachine) {
  // The simulator executes real math: the trained model must match the
  // single-machine trainer run with the same optimizer budget.
  data::SeparableResult sep = data::LinearlySeparable(2000, 10, 0.05, 42);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());

  ml::LbfgsOptions lbfgs;
  lbfgs.max_iterations = 10;
  lbfgs.gradient_tolerance = 0;
  lbfgs.objective_tolerance = 0;

  SparkCluster cluster(SmallCluster(4));
  auto distributed =
      cluster.RunLogisticRegression(sep.data.features, y, 1e-4, lbfgs);
  ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();

  ml::LogisticRegressionOptions local_options;
  local_options.l2 = 1e-4;
  local_options.lbfgs = lbfgs;
  auto local = ml::LogisticRegression(local_options)
                   .Train(sep.data.features, y)
                   .ValueOrDie();

  // Partition sums reorder FP addition; results agree to high precision.
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(distributed.value().model.weights[i], local.weights[i], 1e-6)
        << "weight " << i;
  }
  EXPECT_NEAR(distributed.value().model.intercept, local.intercept, 1e-6);
}

TEST(SparkClusterTest, LrAccumulatesSimulatedTime) {
  data::SeparableResult sep = data::LinearlySeparable(1000, 5, 0.0, 7);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  ml::LbfgsOptions lbfgs;
  lbfgs.max_iterations = 5;
  SparkCluster cluster(SmallCluster(4));
  auto result =
      cluster.RunLogisticRegression(sep.data.features, y, 0.0, lbfgs)
          .ValueOrDie();
  EXPECT_GT(result.stats.simulated_seconds, 0.0);
  EXPECT_GT(result.stats.jobs, 0u);
  EXPECT_GT(result.stats.tasks, 0u);
  EXPECT_GT(result.stats.network_seconds, 0.0);
  EXPECT_GT(result.stats.overhead_seconds, 0.0);
  EXPECT_GT(result.stats.bytes_read_from_disk, 0u);  // cold first pass
  // Components are part of the total story.
  EXPECT_GE(result.stats.simulated_seconds, result.stats.network_seconds);
}

TEST(SparkClusterTest, KMeansMatchesSingleMachineFromSameInit) {
  data::BlobsResult blobs = data::GaussianBlobs(1500, 6, 5, 1.0, 21);
  la::Matrix init(5, 6);
  for (size_t c = 0; c < 5; ++c) {
    la::Copy(blobs.data.features.Row(c * 300), init.Row(c));
  }
  ml::KMeansOptions options;
  options.k = 5;
  options.max_iterations = 10;
  options.tolerance = 0;
  options.initial_centers = &init;

  SparkCluster cluster(SmallCluster(4));
  auto distributed = cluster.RunKMeans(blobs.data.features, options);
  ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();
  auto local = ml::KMeans(options).Cluster(blobs.data.features).ValueOrDie();

  EXPECT_NEAR(distributed.value().clustering.inertia, local.inertia,
              1e-6 * std::max(1.0, local.inertia));
  for (size_t c = 0; c < 5; ++c) {
    for (size_t d = 0; d < 6; ++d) {
      EXPECT_NEAR(distributed.value().clustering.centers(c, d),
                  local.centers(c, d), 1e-8);
    }
  }
}

TEST(SparkClusterTest, KMeansChargesPerIteration) {
  data::BlobsResult blobs = data::GaussianBlobs(500, 4, 3, 1.0, 5);
  ml::KMeansOptions options;
  options.k = 3;
  options.max_iterations = 4;
  options.tolerance = 0;
  SparkCluster cluster(SmallCluster(2));
  auto result = cluster.RunKMeans(blobs.data.features, options).ValueOrDie();
  EXPECT_EQ(result.clustering.iterations, 4u);
  EXPECT_EQ(result.stats.jobs, 4u);
}

TEST(SparkClusterTest, MoreInstancesAreFasterWhenComputeBound) {
  data::SeparableResult sep = data::LinearlySeparable(4000, 20, 0.0, 13);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  ml::LbfgsOptions lbfgs;
  lbfgs.max_iterations = 5;
  lbfgs.gradient_tolerance = 0;

  // Make compute dominate so the instance count matters: expensive CPU,
  // negligible overheads.
  auto config4 = SmallCluster(4);
  auto config8 = SmallCluster(8);
  for (ClusterConfig* config : {&config4, &config8}) {
    config->local_cpu_seconds_per_byte = 1e-6;
    config->task_overhead_seconds = 1e-5;
    config->job_overhead_seconds = 1e-4;
  }
  auto four = SparkCluster(config4)
                  .RunLogisticRegression(sep.data.features, y, 0.0, lbfgs)
                  .ValueOrDie();
  auto eight = SparkCluster(config8)
                   .RunLogisticRegression(sep.data.features, y, 0.0, lbfgs)
                   .ValueOrDie();
  EXPECT_LT(eight.stats.simulated_seconds,
            four.stats.simulated_seconds * 0.75);
}

TEST(SparkClusterTest, SpillRegimeSlowsSmallCluster) {
  // Dataset sized between 4-instance and 8-instance cache capacity: the
  // Fig. 1b mechanism. Per-byte compute is tiny so I/O dominates.
  data::SeparableResult sep = data::LinearlySeparable(5000, 32, 0.0, 29);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  const uint64_t dataset_bytes = 5000 * 32 * sizeof(double);

  auto make_config = [&](size_t instances) {
    ClusterConfig config = SmallCluster(instances);
    // 4-instance cache: 75% of data; 8-instance: 150%.
    config.instance_ram_bytes =
        static_cast<uint64_t>(dataset_bytes * 0.3125);
    config.cache_fraction = 0.6;
    config.local_cpu_seconds_per_byte = 1e-12;
    // Let spill I/O dominate the fixed overheads at this tiny test scale.
    config.spill_read_bytes_per_sec = 1e6;
    config.job_overhead_seconds = 1e-4;
    config.task_overhead_seconds = 1e-5;
    config.network_latency = 1e-5;
    return config;
  };
  ml::LbfgsOptions lbfgs;
  lbfgs.max_iterations = 10;
  lbfgs.gradient_tolerance = 0;
  lbfgs.objective_tolerance = 0;

  auto four = SparkCluster(make_config(4))
                  .RunLogisticRegression(sep.data.features, y, 0.0, lbfgs)
                  .ValueOrDie();
  auto eight = SparkCluster(make_config(8))
                   .RunLogisticRegression(sep.data.features, y, 0.0, lbfgs)
                   .ValueOrDie();
  // The 4-instance cluster re-reads spilled partitions every pass.
  EXPECT_GT(four.stats.io_seconds, eight.stats.io_seconds * 2);
  EXPECT_GT(four.stats.simulated_seconds, eight.stats.simulated_seconds);
}

TEST(SparkClusterTest, PlanPartitionsHonorsCacheCapacity) {
  ClusterConfig config = SmallCluster(2);
  config.instance_ram_bytes = 800;  // bytes! absurdly tiny on purpose
  config.cache_fraction = 0.5;
  SparkCluster cluster(config);
  auto partitions = cluster.PlanPartitions(100, /*row_bytes=*/80);
  // Cache capacity = 2*800*0.5 = 800 bytes = 10 rows of 80B.
  size_t cached_rows = 0;
  for (const auto& p : partitions) {
    if (p.cached) {
      cached_rows += p.rows();
    }
  }
  EXPECT_LE(cached_rows, 10u);
  EXPECT_LT(cached_rows, 100u);
}

TEST(SparkClusterTest, RejectsInvalidInputs) {
  SparkCluster cluster(SmallCluster(2));
  la::Matrix empty;
  la::Vector none;
  ml::LbfgsOptions lbfgs;
  EXPECT_FALSE(cluster.RunLogisticRegression(empty, none, 0.0, lbfgs).ok());
  la::Matrix x(10, 2);
  la::Vector bad(3);
  EXPECT_FALSE(cluster.RunLogisticRegression(x, bad, 0.0, lbfgs).ok());
  ml::KMeansOptions options;
  options.k = 100;  // > rows
  EXPECT_FALSE(cluster.RunKMeans(x, options).ok());
  ClusterConfig broken = SmallCluster(2);
  broken.local_cpu_seconds_per_byte = 0;
  la::Vector y(10);
  EXPECT_FALSE(
      SparkCluster(broken).RunLogisticRegression(x, y, 0.0, lbfgs).ok());
}

TEST(JobStatsTest, AccumulateMergesMeasuredInstanceStats) {
  JobStats total, job;
  job.instance_exec.resize(2);
  job.instance_exec[0].cached.prefetch_hits = 5;
  job.instance_exec[1].spilled.stalls = 2;
  job.instance_exec[1].spill_refaults = 3;
  job.instance_exec[1].spill_refault_bytes = 4096;
  total.Accumulate(job);
  total.Accumulate(job);
  ASSERT_EQ(total.instance_exec.size(), 2u);
  EXPECT_EQ(total.instance_exec[0].cached.prefetch_hits, 10u);
  EXPECT_EQ(total.instance_exec[1].spilled.stalls, 4u);
  EXPECT_EQ(total.instance_exec[1].spill_refaults, 6u);
  EXPECT_EQ(total.instance_exec[1].spill_refault_bytes, 8192u);
  // Jobs without measured stats merge in without disturbing them.
  JobStats plain;
  plain.jobs = 1;
  total.Accumulate(plain);
  EXPECT_EQ(total.instance_exec.size(), 2u);
  EXPECT_NE(total.ToString().find("refaults=6"), std::string::npos);
}

TEST(PartitionHelpersTest, InstanceRowsAndSpillCounts) {
  auto partitions = MakePartitions(100, 10, 2, 50);
  EXPECT_EQ(InstanceRows(partitions, 0) + InstanceRows(partitions, 1), 100u);
  EXPECT_EQ(CountSpilled(partitions), 5u);
  // Partitions 0..4 are cached (10 rows each), alternating instances.
  EXPECT_EQ(InstanceRows(partitions, 0, /*cached_only=*/true), 30u);
  EXPECT_EQ(InstanceRows(partitions, 1, /*cached_only=*/true), 20u);
  const Partition& p = partitions[3];
  EXPECT_EQ(p.byte_begin(8), p.row_begin * 8u);
  EXPECT_EQ(p.byte_size(8), p.rows() * 8u);
}

TEST(JobStatsTest, AccumulateSums) {
  JobStats a, b;
  a.simulated_seconds = 1;
  a.jobs = 2;
  a.bytes_over_network = 100;
  a.measured_exec_seconds = 0.5;
  a.predicted_exec_seconds = 0.75;
  b.simulated_seconds = 2;
  b.jobs = 3;
  b.bytes_over_network = 50;
  b.measured_exec_seconds = 1.5;
  b.predicted_exec_seconds = 0.25;
  a.Accumulate(b);
  EXPECT_DOUBLE_EQ(a.simulated_seconds, 3.0);
  EXPECT_EQ(a.jobs, 5u);
  EXPECT_EQ(a.bytes_over_network, 150u);
  EXPECT_DOUBLE_EQ(a.measured_exec_seconds, 2.0);
  EXPECT_DOUBLE_EQ(a.predicted_exec_seconds, 1.0);
  EXPECT_NE(a.ToString().find("jobs=5"), std::string::npos);
  // The calibrated-prediction line appears once a prediction exists.
  EXPECT_NE(a.ToString().find("calibrated prediction"), std::string::npos);
  EXPECT_EQ(JobStats().ToString().find("calibrated prediction"),
            std::string::npos);
}

}  // namespace
}  // namespace m3::cluster
