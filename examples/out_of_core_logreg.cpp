// Out-of-core logistic regression: the paper's headline scenario.
//
// Generates a dataset, maps it under an emulated RAM budget smaller than
// the data, and trains while a ResourceMonitor watches utilization. On the
// paper's hardware this is the regime where "disk I/O was 100% utilized
// while CPU was only utilized at around 13%".
//
//   out_of_core_logreg --images=40000 --budget_mb=32

#include <cstdio>

#include "core/m3.h"
#include "data/dataset.h"
#include "io/platform.h"
#include "ml/metrics.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/stopwatch.h"

namespace {

int Run(int argc, char** argv) {
  int64_t images = 20000;
  int64_t budget_mb = 32;
  std::string path = "/tmp/m3_ooc.m3";
  bool keep = false;
  m3::util::FlagParser flags(
      "Out-of-core logistic regression under an emulated RAM budget");
  flags.AddInt64("images", &images, "digit images to generate");
  flags.AddInt64("budget_mb", &budget_mb,
                 "emulated RAM budget for the mapped features (MiB)");
  flags.AddString("path", &path, "dataset file");
  flags.AddBool("keep", &keep, "keep the dataset file afterwards");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    return 0;
  }

  if (auto st = m3::data::GenerateInfimnistDataset(
          path, static_cast<uint64_t>(images), 2016, /*binary_labels=*/true);
      !st.ok()) {
    std::fprintf(stderr, "generate: %s\n", st.ToString().c_str());
    return 1;
  }

  m3::M3Options options;
  options.ram_budget_bytes = static_cast<uint64_t>(budget_mb) << 20;
  auto dataset = m3::MappedDataset::Open(path, options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "open: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const double data_mb =
      static_cast<double>(dataset.value().feature_bytes()) / (1 << 20);
  std::printf("Dataset: %.1f MiB of features; emulated RAM: %lld MiB (%s)\n",
              data_mb, static_cast<long long>(budget_mb),
              data_mb > static_cast<double>(budget_mb) ? "OUT-OF-CORE"
                                                       : "fits in budget");
  std::printf("Platform: %s\n",
              m3::io::GetPlatformCapabilities().ToString().c_str());

  // Cold cache, like the paper's runs.
  M3_IGNORE_STATUS(dataset.value().EvictAll(), "best-effort cold-start evict");

  m3::ResourceMonitor monitor(0.1);
  monitor.Start();
  m3::util::Stopwatch watch;

  m3::ml::LogisticRegressionOptions train_options;
  train_options.lbfgs = m3::PaperLbfgsOptions();
  m3::ml::OptimizationResult stats;
  auto model =
      m3::TrainLogisticRegression(dataset.value(), train_options, &stats);
  const double seconds = watch.ElapsedSeconds();
  m3::MonitorReport report = monitor.Stop();

  if (!model.ok()) {
    std::fprintf(stderr, "train: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("\n10-iteration L-BFGS run: %s (%zu full data passes)\n",
              m3::util::HumanDuration(seconds).c_str(),
              stats.function_evaluations);
  std::printf("Resource profile: %s\n", report.ToString().c_str());
  if (auto* budget = dataset.value().ram_budget(); budget != nullptr) {
    std::printf("RAM-budget emulator: %llu evictions, %s re-read candidates "
                "across %llu passes\n",
                static_cast<unsigned long long>(budget->evictions()),
                m3::util::HumanBytes(budget->bytes_evicted()).c_str(),
                static_cast<unsigned long long>(budget->passes()));
  }

  auto features = dataset.value().features();
  std::vector<double> truth = dataset.value().CopyLabels();
  std::vector<double> predictions(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    predictions[i] = model.value().Predict(features.Row(i));
  }
  std::printf("Accuracy: %.2f%%\n",
              100.0 * m3::ml::Accuracy(predictions, truth));

  if (!keep) {
    M3_IGNORE_STATUS(m3::io::RemoveFile(path), "best-effort scratch cleanup");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
