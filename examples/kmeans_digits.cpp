// k-means clustering of memory-mapped digit images -- the paper's second
// evaluated algorithm (Fig. 1b uses k = 5, 10 iterations). Reports
// inertia per iteration and cluster purity against the digit labels.

#include <cstdio>

#include "core/m3.h"
#include "data/dataset.h"
#include "ml/metrics.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/stopwatch.h"

namespace {

int Run(int argc, char** argv) {
  int64_t images = 10000;
  int64_t k = 5;
  int64_t iterations = 10;
  std::string path = "/tmp/m3_kmeans.m3";
  m3::util::FlagParser flags("k-means over a memory-mapped digit dataset");
  flags.AddInt64("images", &images, "digit images to generate");
  flags.AddInt64("k", &k, "number of clusters");
  flags.AddInt64("iterations", &iterations, "Lloyd iterations");
  flags.AddString("path", &path, "dataset file");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    return 0;
  }

  if (auto st = m3::data::GenerateInfimnistDataset(
          path, static_cast<uint64_t>(images), 2016, /*binary_labels=*/false);
      !st.ok()) {
    std::fprintf(stderr, "generate: %s\n", st.ToString().c_str());
    return 1;
  }
  auto dataset = m3::MappedDataset::Open(path).ValueOrDie();
  std::printf("Clustering %llu mapped images (%s) with k=%lld, %lld "
              "iterations\n",
              static_cast<unsigned long long>(dataset.rows()),
              m3::util::HumanBytes(dataset.feature_bytes()).c_str(),
              static_cast<long long>(k),
              static_cast<long long>(iterations));

  m3::ml::KMeansOptions options = m3::PaperKMeansOptions();
  options.k = static_cast<size_t>(k);
  options.max_iterations = static_cast<size_t>(iterations);
  options.iteration_callback = [](size_t iter, double inertia) {
    std::printf("  iteration %2zu: inertia %.4g\n", iter, inertia);
  };

  m3::util::Stopwatch watch;
  auto result = m3::TrainKMeans(dataset, options);
  if (!result.ok()) {
    std::fprintf(stderr, "kmeans: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Done in %s (%zu iterations, final inertia %.4g)\n",
              m3::util::HumanDuration(watch.ElapsedSeconds()).c_str(),
              result.value().iterations, result.value().inertia);

  auto assignment =
      m3::ml::KMeans::Assign(dataset.features(), result.value().centers);
  const double purity = m3::ml::ClusterPurity(
      assignment, dataset.CopyLabels(), static_cast<size_t>(k), 10);
  std::printf("Cluster purity vs digit labels: %.1f%%\n", purity * 100.0);

  M3_IGNORE_STATUS(m3::io::RemoveFile(path), "best-effort scratch cleanup");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
