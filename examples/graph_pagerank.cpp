// Graph mining over a memory-mapped edge list: PageRank and connected
// components. This is the workload family (MMap, Lin et al. 2014) whose
// success inspired M3 -- included to show the same library serves both.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/connected_components.h"
#include "graph/edge_list.h"
#include "graph/pagerank.h"
#include "io/file.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/stopwatch.h"

namespace {

int Run(int argc, char** argv) {
  int64_t nodes = 100000;
  int64_t edges = 1000000;
  std::string path = "/tmp/m3_graph.m3g";
  m3::util::FlagParser flags(
      "PageRank + connected components over a memory-mapped edge list");
  flags.AddInt64("nodes", &nodes, "number of nodes");
  flags.AddInt64("edges", &edges, "number of random edges");
  flags.AddString("path", &path, "edge file");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    return 0;
  }

  std::printf("Writing %lld random edges over %lld nodes -> %s\n",
              static_cast<long long>(edges), static_cast<long long>(nodes),
              path.c_str());
  auto edge_vector = m3::graph::RandomGraph(
      static_cast<uint64_t>(nodes), static_cast<uint64_t>(edges), 42);
  if (auto st = m3::graph::WriteEdgeList(path, static_cast<uint64_t>(nodes),
                                         edge_vector);
      !st.ok()) {
    std::fprintf(stderr, "write: %s\n", st.ToString().c_str());
    return 1;
  }

  auto graph = m3::graph::MappedEdgeList::Open(path).ValueOrDie();
  std::printf("Mapped %s of edges\n",
              m3::util::HumanBytes(graph.num_edges() * 16).c_str());

  m3::util::Stopwatch watch;
  auto pagerank = m3::graph::PageRank(graph).ValueOrDie();
  std::printf("PageRank: %zu iterations in %s (converged=%s)\n",
              pagerank.iterations,
              m3::util::HumanDuration(watch.ElapsedSeconds()).c_str(),
              pagerank.converged ? "yes" : "no");

  // Top 5 nodes by rank.
  std::vector<uint64_t> order(pagerank.ranks.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](uint64_t a, uint64_t b) {
                      return pagerank.ranks[a] > pagerank.ranks[b];
                    });
  std::printf("Top nodes:");
  for (int i = 0; i < 5; ++i) {
    std::printf(" %llu(%.2e)", static_cast<unsigned long long>(order[i]),
                pagerank.ranks[order[i]]);
  }
  std::printf("\n");

  watch.Restart();
  auto components = m3::graph::ConnectedComponents(graph).ValueOrDie();
  std::printf("Connected components: %llu in %s\n",
              static_cast<unsigned long long>(components.num_components),
              m3::util::HumanDuration(watch.ElapsedSeconds()).c_str());

  M3_IGNORE_STATUS(m3::io::RemoveFile(path), "best-effort scratch cleanup");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
