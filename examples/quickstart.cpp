// Quickstart: the M3 workflow end to end on a small dataset.
//
//   1. Generate an InfiMNIST-style dataset file (binary labels).
//   2. Memory-map it (no loading step -- this is the point of M3).
//   3. Train logistic regression with the paper's settings.
//   4. Evaluate.
//
// The "Table 1" moment is step 2-3: the training code receives plain
// matrix views and cannot tell the data is a file.

#include <cstdio>

#include "core/m3.h"
#include "data/dataset.h"
#include "ml/metrics.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/stopwatch.h"

namespace {

int Run(int argc, char** argv) {
  int64_t images = 5000;
  std::string path = "/tmp/m3_quickstart.m3";
  m3::util::FlagParser flags("M3 quickstart: map a dataset, train, evaluate");
  flags.AddInt64("images", &images, "number of digit images to generate");
  flags.AddString("path", &path, "dataset file to create");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    return 0;
  }

  // 1. Generate (binary labels: digit < 5 vs >= 5).
  std::printf("Generating %lld images -> %s\n",
              static_cast<long long>(images), path.c_str());
  m3::util::Stopwatch watch;
  if (auto st = m3::data::GenerateInfimnistDataset(
          path, static_cast<uint64_t>(images), /*seed=*/2016,
          /*binary_labels=*/true);
      !st.ok()) {
    std::fprintf(stderr, "generate: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("  generated in %s\n",
              m3::util::HumanDuration(watch.ElapsedSeconds()).c_str());

  // 2. Memory-map. No read loop, no partitioning, no loading bar.
  auto dataset = m3::MappedDataset::Open(path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "open: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("Mapped %llu x %llu doubles (%s) in O(1)\n",
              static_cast<unsigned long long>(dataset.value().rows()),
              static_cast<unsigned long long>(dataset.value().cols()),
              m3::util::HumanBytes(dataset.value().feature_bytes()).c_str());

  // 3. Train with the paper's configuration: 10 iterations of L-BFGS.
  m3::ml::LogisticRegressionOptions options;
  options.l2 = 1e-6;
  options.lbfgs = m3::PaperLbfgsOptions();
  m3::ml::OptimizationResult stats;
  watch.Restart();
  auto model = m3::TrainLogisticRegression(dataset.value(), options, &stats);
  if (!model.ok()) {
    std::fprintf(stderr, "train: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("Trained: %zu L-BFGS iterations, %zu data passes, %s\n",
              stats.iterations, stats.function_evaluations,
              m3::util::HumanDuration(watch.ElapsedSeconds()).c_str());

  // 4. Evaluate on the training set (demo).
  auto features = dataset.value().features();
  std::vector<double> truth = dataset.value().CopyLabels();
  std::vector<double> predictions(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    predictions[i] = model.value().Predict(features.Row(i));
  }
  std::printf("Training accuracy: %.2f%%\n",
              100.0 * m3::ml::Accuracy(predictions, truth));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
