// Swiss-army tool for M3 dataset files. Subcommands (first positional
// argument):
//
//   info <file.m3>                      print header + label histogram
//   generate <file.m3> --images=N       InfiMNIST-style digits
//   from-csv <in.csv> <out.m3>          last column = label
//   to-idx <in.m3> <images.idx3> <labels.idx1>
//                                        export as MNIST IDX containers
//                                        (values clamped to [0,255] bytes)

#include <cstdio>
#include <map>

#include "core/m3.h"
#include "data/dataset.h"
#include "data/idx_format.h"
#include "data/infimnist.h"
#include "util/flags.h"
#include "util/format.h"

namespace {

using m3::util::Status;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Info(const std::string& path) {
  auto dataset = m3::MappedDataset::Open(path);
  if (!dataset.ok()) {
    return Fail(dataset.status());
  }
  const auto& meta = dataset.value().meta();
  std::printf("%s\n", path.c_str());
  std::printf("  rows:        %llu\n",
              static_cast<unsigned long long>(meta.rows));
  std::printf("  cols:        %llu\n",
              static_cast<unsigned long long>(meta.cols));
  std::printf("  classes:     %u\n", meta.num_classes);
  std::printf("  features:    %s at offset %llu\n",
              m3::util::HumanBytes(meta.FeatureBytes()).c_str(),
              static_cast<unsigned long long>(meta.features_offset));
  std::printf("  file size:   %s\n",
              m3::util::HumanBytes(meta.FileBytes()).c_str());
  std::map<double, uint64_t> histogram;
  for (double label : dataset.value().CopyLabels()) {
    ++histogram[label];
  }
  std::printf("  labels:");
  for (const auto& [label, count] : histogram) {
    std::printf("  %g:%llu", label, static_cast<unsigned long long>(count));
  }
  std::printf("\n");
  return 0;
}

int Generate(const std::string& path, uint64_t images, uint64_t seed,
             bool binary) {
  if (auto st = m3::data::GenerateInfimnistDataset(path, images, seed, binary);
      !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %llu images to %s\n",
              static_cast<unsigned long long>(images), path.c_str());
  return Info(path);
}

int FromCsv(const std::string& csv_path, const std::string& out_path) {
  auto contents = m3::io::ReadFileToString(csv_path);
  if (!contents.ok()) {
    return Fail(contents.status());
  }
  std::vector<std::vector<double>> rows;
  std::map<double, bool> labels_seen;
  size_t cols = 0;
  for (const std::string& line :
       m3::util::StrSplit(contents.value(), '\n')) {
    if (m3::util::StrTrim(line).empty()) {
      continue;
    }
    std::vector<double> row;
    for (const std::string& cell : m3::util::StrSplit(line, ',')) {
      auto value = m3::util::ParseDouble(cell);
      if (!value.ok()) {
        return Fail(Status::InvalidArgument("bad CSV cell: " + cell));
      }
      row.push_back(value.value());
    }
    if (row.size() < 2) {
      return Fail(Status::InvalidArgument(
          "CSV rows need at least one feature and one label column"));
    }
    if (cols == 0) {
      cols = row.size();
    } else if (row.size() != cols) {
      return Fail(Status::InvalidArgument("ragged CSV"));
    }
    labels_seen[row.back()] = true;
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Fail(Status::InvalidArgument("empty CSV"));
  }
  auto writer = m3::data::DatasetWriter::Create(out_path, cols - 1);
  if (!writer.ok()) {
    return Fail(writer.status());
  }
  for (const auto& row : rows) {
    m3::la::ConstVectorView features(row.data(), cols - 1);
    if (auto st = writer.value().AppendRow(features, row.back()); !st.ok()) {
      return Fail(st);
    }
  }
  if (auto st = writer.value().Finalize(
          static_cast<uint32_t>(labels_seen.size()));
      !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %zu rows x %zu features to %s\n", rows.size(), cols - 1,
              out_path.c_str());
  return 0;
}

int ToIdx(const std::string& in_path, const std::string& images_path,
          const std::string& labels_path) {
  auto dataset = m3::MappedDataset::Open(in_path);
  if (!dataset.ok()) {
    return Fail(dataset.status());
  }
  if (dataset.value().cols() != m3::data::kImageFeatures) {
    return Fail(Status::InvalidArgument(
        "to-idx requires 784-feature (28x28) datasets"));
  }
  const size_t rows = dataset.value().rows();
  std::vector<uint8_t> pixels(rows * m3::data::kImageFeatures);
  auto features = dataset.value().features();
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < m3::data::kImageFeatures; ++c) {
      const double v = std::clamp(features(r, c), 0.0, 255.0);
      pixels[r * m3::data::kImageFeatures + c] = static_cast<uint8_t>(v);
    }
  }
  std::vector<uint8_t> labels(rows);
  auto label_view = dataset.value().labels();
  for (size_t r = 0; r < rows; ++r) {
    labels[r] = static_cast<uint8_t>(label_view[r]);
  }
  if (auto st = m3::data::WriteIdxImages(images_path, pixels,
                                         static_cast<uint32_t>(rows),
                                         m3::data::kImageSide,
                                         m3::data::kImageSide);
      !st.ok()) {
    return Fail(st);
  }
  if (auto st = m3::data::WriteIdxLabels(labels_path, labels); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %zu images -> %s, labels -> %s\n", rows,
              images_path.c_str(), labels_path.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  int64_t images = 1000;
  int64_t seed = 2016;
  bool binary = false;
  m3::util::FlagParser flags(
      "M3 dataset tool: info | generate | from-csv | to-idx");
  flags.AddInt64("images", &images, "images for `generate`");
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddBool("binary", &binary, "binary labels for `generate`");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    return Fail(st);
  }
  if (flags.help_requested()) {
    return 0;
  }
  const auto& args = flags.positional();
  if (args.empty()) {
    std::fprintf(stderr, "usage: dataset_tool <info|generate|from-csv|to-idx>"
                         " <paths...> [flags]\n");
    return 1;
  }
  const std::string& command = args[0];
  if (command == "info" && args.size() == 2) {
    return Info(args[1]);
  }
  if (command == "generate" && args.size() == 2) {
    return Generate(args[1], static_cast<uint64_t>(images),
                    static_cast<uint64_t>(seed), binary);
  }
  if (command == "from-csv" && args.size() == 3) {
    return FromCsv(args[1], args[2]);
  }
  if (command == "to-idx" && args.size() == 4) {
    return ToIdx(args[1], args[2], args[3]);
  }
  std::fprintf(stderr, "bad command or argument count; see --help\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
