// 10-class digit classification on a memory-mapped dataset: softmax
// regression (L-BFGS) with a held-out evaluation split and a confusion
// matrix -- the multiclass extension of the paper's logistic regression
// workload.

#include <cstdio>

#include "core/m3.h"
#include "data/dataset.h"
#include "ml/metrics.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace {

int Run(int argc, char** argv) {
  int64_t train_images = 8000;
  int64_t test_images = 2000;
  std::string dir = "/tmp";
  m3::util::FlagParser flags(
      "Multiclass digit classification over memory-mapped data");
  flags.AddInt64("train_images", &train_images, "training images");
  flags.AddInt64("test_images", &test_images, "held-out images");
  flags.AddString("dir", &dir, "directory for dataset files");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    return 0;
  }

  const std::string train_path = dir + "/m3_digits_train.m3";
  const std::string test_path = dir + "/m3_digits_test.m3";
  // Disjoint deterministic streams via different seeds.
  if (!m3::data::GenerateInfimnistDataset(train_path,
                                          static_cast<uint64_t>(train_images),
                                          1, false)
           .ok() ||
      !m3::data::GenerateInfimnistDataset(
           test_path, static_cast<uint64_t>(test_images), 2, false)
           .ok()) {
    std::fprintf(stderr, "dataset generation failed\n");
    return 1;
  }

  auto train = m3::MappedDataset::Open(train_path).ValueOrDie();
  auto test = m3::MappedDataset::Open(test_path).ValueOrDie();

  m3::ml::SoftmaxRegressionOptions options;
  options.l2 = 1e-5;
  options.lbfgs.max_iterations = 40;
  m3::ml::OptimizationResult stats;
  m3::util::Stopwatch watch;
  auto model = m3::ml::SoftmaxRegression(options).Train(
      train.features(), train.labels(), 10, &stats);
  if (!model.ok()) {
    std::fprintf(stderr, "train: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("Trained softmax on %lld mapped images in %s "
              "(%zu iterations, %zu passes)\n",
              static_cast<long long>(train_images),
              m3::util::HumanDuration(watch.ElapsedSeconds()).c_str(),
              stats.iterations, stats.function_evaluations);

  auto evaluate = [&](const m3::MappedDataset& ds, const char* name) {
    std::vector<double> truth = ds.CopyLabels();
    std::vector<double> predictions(truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      predictions[i] = static_cast<double>(
          model.value().Predict(ds.features().Row(i)));
    }
    std::printf("%s accuracy: %.2f%%\n", name,
                100.0 * m3::ml::Accuracy(predictions, truth));
    return m3::ml::ConfusionMatrix(predictions, truth, 10);
  };
  evaluate(train, "Train");
  m3::la::Matrix confusion = evaluate(test, "Test ");

  // Confusion matrix for the held-out digits.
  std::vector<std::string> headers{"truth\\pred"};
  for (int c = 0; c < 10; ++c) {
    headers.push_back(std::to_string(c));
  }
  m3::util::TablePrinter table(headers);
  for (size_t t = 0; t < 10; ++t) {
    std::vector<std::string> row{std::to_string(t)};
    for (size_t p = 0; p < 10; ++p) {
      row.push_back(m3::util::StrFormat("%.0f", confusion(t, p)));
    }
    table.AddRow(row);
  }
  table.Print(stdout);

  M3_IGNORE_STATUS(m3::io::RemoveFile(train_path),
                   "best-effort scratch cleanup");
  M3_IGNORE_STATUS(m3::io::RemoveFile(test_path),
                   "best-effort scratch cleanup");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
