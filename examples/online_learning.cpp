// Online learning on memory-mapped data: the first extension named in the
// paper's "Conclusions & Ongoing Work". Mini-batch SGD visits contiguous
// batches in shuffled order -- randomness for convergence, in-batch
// sequential access for mmap locality -- and an AccessPatternTracer
// quantifies that locality.

#include <cstdio>

#include "core/access_pattern.h"
#include "core/m3.h"
#include "data/dataset.h"
#include "la/blas.h"
#include "ml/metrics.h"
#include "ml/sgd.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace {

int Run(int argc, char** argv) {
  int64_t images = 20000;
  int64_t epochs = 5;
  int64_t batch_rows = 256;
  std::string path = "/tmp/m3_online.m3";
  m3::util::FlagParser flags("Mini-batch SGD over a memory-mapped dataset");
  flags.AddInt64("images", &images, "digit images to generate");
  flags.AddInt64("epochs", &epochs, "SGD epochs");
  flags.AddInt64("batch_rows", &batch_rows, "rows per mini-batch");
  flags.AddString("path", &path, "dataset file");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    return 0;
  }

  if (auto st = m3::data::GenerateInfimnistDataset(
          path, static_cast<uint64_t>(images), 2016, /*binary_labels=*/true);
      !st.ok()) {
    std::fprintf(stderr, "generate: %s\n", st.ToString().c_str());
    return 1;
  }
  auto dataset = m3::MappedDataset::Open(path).ValueOrDie();

  m3::ml::LogisticRegressionObjective objective(dataset.features(),
                                                dataset.labels(), 1e-5);
  m3::la::Vector w(objective.Dimension());

  m3::ml::SgdOptions options;
  options.epochs = static_cast<size_t>(epochs);
  options.batch_rows = static_cast<size_t>(batch_rows);
  options.learning_rate = 1e-5;  // raw [0,255] pixels need a small step
  options.epoch_callback = [](size_t epoch, double loss) {
    std::printf("  epoch %zu: mean batch loss %.5f\n", epoch, loss);
  };

  m3::util::Stopwatch watch;
  auto result = m3::ml::Sgd(options).Minimize(&objective, w);
  if (!result.ok()) {
    std::fprintf(stderr, "sgd: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("SGD: %lld epochs in %s, final full-data loss %.5f\n",
              static_cast<long long>(epochs),
              m3::util::HumanDuration(watch.ElapsedSeconds()).c_str(),
              result.value().objective);

  // Reconstruct SGD's access pattern (shuffled batch visit order) and
  // compare with a fully random per-row pattern.
  const size_t rows = dataset.rows();
  const uint64_t row_bytes = dataset.cols() * sizeof(double);
  m3::AccessPatternTracer sgd_trace(row_bytes);
  {
    m3::util::Rng rng(options.seed);
    const size_t num_batches =
        (rows + options.batch_rows - 1) / options.batch_rows;
    std::vector<size_t> order(num_batches);
    for (size_t i = 0; i < num_batches; ++i) {
      order[i] = i;
    }
    rng.Shuffle(&order);
    for (size_t b : order) {
      const size_t begin = b * options.batch_rows;
      const size_t end = std::min(rows, begin + options.batch_rows);
      sgd_trace.RecordRange(begin, end);
    }
  }
  m3::AccessPatternTracer random_trace(row_bytes);
  {
    m3::util::Rng rng(7);
    for (size_t i = 0; i < rows; ++i) {
      random_trace.Record(rng.UniformInt(uint64_t{rows}));
    }
  }
  std::printf("SGD access pattern:    %s\n",
              sgd_trace.Summarize().ToString().c_str());
  std::printf("Random access pattern: %s\n",
              random_trace.Summarize().ToString().c_str());

  // Accuracy of the online-trained model.
  m3::ml::LogisticRegressionModel model;
  model.weights = m3::la::Vector(dataset.cols());
  m3::la::Copy(w.View().Slice(0, dataset.cols()), model.weights);
  model.intercept = w[dataset.cols()];
  std::vector<double> truth = dataset.CopyLabels();
  std::vector<double> predictions(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    predictions[i] = model.Predict(dataset.features().Row(i));
  }
  std::printf("Accuracy: %.2f%%\n",
              100.0 * m3::ml::Accuracy(predictions, truth));

  M3_IGNORE_STATUS(m3::io::RemoveFile(path), "best-effort scratch cleanup");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
