// Serial vs pipelined logistic-regression epochs under a constrained RAM
// budget. The serial configuration faults every chunk in synchronously
// (readahead disabled, kRandom advice so the kernel does not prefetch
// either); the pipelined configurations overlap readahead of chunk i+1
// with compute on chunk i — one row per prefetch backend (madvise WILLNEED
// / pread page-cache warming / io_uring batched reads / auto), since on
// filesystems where WILLNEED is a silent no-op only the explicit-read
// backends actually overlap. All configurations evict behind the scan
// under the same budget, so each pass re-reads the evicted bytes from
// storage — the out-of-core regime where overlap pays — and all must
// produce bitwise-identical weights: backends move bytes, never values.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_common.h"
#include "core/m3.h"
#include "io/io_stats.h"
#include "io/prefetch_backend.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace m3::bench {
namespace {

struct EpochResult {
  double seconds = 0;
  io::ExecCounters exec;
  io::ResourceSample usage;
  std::vector<double> weights;  ///< trained weights (bitwise comparison)
  bool trained = false;         ///< training succeeded; weights are valid
};

EpochResult RunConfig(const std::string& path, const M3Options& options,
                      size_t iterations) {
  auto dataset = MappedDataset::Open(path, options).ValueOrDie();
  // cold start: first pass reads from storage
  M3_IGNORE_STATUS(dataset.EvictAll(), "best-effort cold-start evict");
  ml::LogisticRegressionOptions train_options;
  train_options.lbfgs = PaperLbfgsOptions();
  train_options.lbfgs.max_iterations = iterations;
  const io::ExecCounters exec_before = io::GlobalExecCounters();
  const io::ResourceSample before = io::ResourceSample::Now();
  util::Stopwatch watch;
  auto model = TrainLogisticRegression(dataset, train_options);
  EpochResult result;
  result.seconds = watch.ElapsedSeconds();
  result.usage = io::ResourceSample::Now() - before;
  result.exec = io::GlobalExecCounters() - exec_before;
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
  } else {
    result.trained = true;
    result.weights = model.value().weights.values();
    result.weights.push_back(model.value().intercept);
  }
  return result;
}

bool BitwiseEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// The backends this binary compares: always madvise/pread/auto, plus
/// uring when the build carries it (the runtime fallback would silently
/// re-measure pread, muddying the comparison on uring-less kernels).
std::vector<io::PrefetchBackendKind> BackendsToCompare() {
  std::vector<io::PrefetchBackendKind> kinds = {
      io::PrefetchBackendKind::kMadvise, io::PrefetchBackendKind::kPread};
  if (io::UringCompiledIn() && io::UringAvailable()) {
    kinds.push_back(io::PrefetchBackendKind::kUring);
  }
  kinds.push_back(io::PrefetchBackendKind::kAuto);
  return kinds;
}

int Run(int argc, char** argv) {
  int64_t size_mb = 96;
  int64_t budget_percent = 25;
  int64_t iterations = 3;
  int64_t readahead = 4;
  int64_t workers = 2;
  std::string dir = "/tmp";
  std::string backend = "all";
  std::string trace;
  bool csv = false;
  util::FlagParser flags(
      "serial vs pipelined out-of-core logistic-regression epochs");
  flags.AddInt64("size_mb", &size_mb, "dataset size in MiB");
  flags.AddInt64("budget_percent", &budget_percent,
                 "RAM budget as percent of the dataset");
  flags.AddInt64("iterations", &iterations, "L-BFGS iterations per config");
  flags.AddInt64("readahead", &readahead,
                 "pipelined configuration readahead chunks");
  flags.AddInt64("workers", &workers,
                 "pipelined configuration engine workers");
  flags.AddString("dir", &dir, "scratch directory");
  flags.AddString("backend", &backend,
                  "prefetch backend to compare: all|madvise|pread|uring|auto");
  flags.AddString("trace", &trace,
                  "write a Chrome trace-event JSON of the run to this path");
  flags.AddBool("csv", &csv, "emit CSV");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    return UsageError(flags, argv[0], st.ToString());
  }
  if (flags.help_requested()) {
    return 0;
  }
  if (!ValidateBenchFlags(flags, argv[0], {{"size_mb", size_mb}, {"budget_percent", budget_percent}, {"iterations", iterations}, {"readahead", readahead}},
                          {{"workers", workers}}, &trace)) {
    return 1;
  }

  PrintPreamble("pipeline overlap: serial vs prefetch/evict-overlapped");
  // The trace session wraps every configuration below; each dataset also
  // carries the path in its options so MappedDataset::Open registers its
  // mapping with the residency sampler.
  TraceSession trace_session(trace);
  const std::string path = dir + "/m3_pipeline_overlap.m3";
  if (auto st =
          EnsureDataset(path, ImagesForMb(static_cast<uint64_t>(size_mb)));
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const uint64_t budget_bytes =
      (static_cast<uint64_t>(size_mb) << 20) *
      static_cast<uint64_t>(budget_percent) / 100;
  std::printf("budget: %s (%lld%% of data) — every pass re-reads the "
              "evicted remainder\n\n",
              util::HumanBytes(budget_bytes).c_str(),
              static_cast<long long>(budget_percent));

  // Serial: no readahead, kRandom defeats kernel readahead so chunk
  // faults are truly synchronous — disk idles while we compute.
  M3Options serial_options;
  serial_options.ram_budget_bytes = budget_bytes;
  serial_options.readahead_chunks = 0;
  serial_options.pipeline_workers = 0;
  serial_options.advice = io::Advice::kRandom;
  serial_options.trace_path = trace;

  // One pipelined configuration per prefetch backend; identical except for
  // how the readahead I/O is issued.
  std::vector<io::PrefetchBackendKind> backends;
  if (backend == "all") {
    backends = BackendsToCompare();
  } else {
    auto parsed = io::ParsePrefetchBackendKind(backend);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    backends.push_back(parsed.value());
  }

  // Report what the WILLNEED-efficacy probe sees on this filesystem (this
  // is what `auto` keys off; the probe verdict is cached process-wide).
  {
    auto probe_data = MappedDataset::Open(path).ValueOrDie();
    std::printf("probe: %s\n\n",
                io::ProbePrefetchEfficacy(probe_data.mapping()).ToString()
                    .c_str());
  }

  const EpochResult serial =
      RunConfig(path, serial_options, static_cast<size_t>(iterations));

  util::TablePrinter table({"config", "epochs_s", "read", "major_faults",
                            "prefetches", "stalls", "submits", "fallbacks",
                            "evicted"});
  auto add_row = [&](const std::string& name, const EpochResult& r) {
    table.AddRow({name, util::StrFormat("%.3f", r.seconds),
                  util::HumanBytes(r.usage.io.read_bytes),
                  util::StrFormat("%lld",
                                  static_cast<long long>(r.usage.faults.major)),
                  util::StrFormat("%llu", static_cast<unsigned long long>(
                                              r.exec.prefetches)),
                  util::StrFormat("%llu", static_cast<unsigned long long>(
                                              r.exec.stalls)),
                  util::StrFormat("%llu", static_cast<unsigned long long>(
                                              r.exec.backend_submits)),
                  util::StrFormat("%llu", static_cast<unsigned long long>(
                                              r.exec.backend_fallbacks)),
                  util::HumanBytes(r.exec.bytes_evicted)});
  };
  add_row("serial", serial);

  JsonReporter reporter("pipeline_overlap");
  reporter.Add("serial", serial.seconds, serial.exec);

  double best_seconds = 0;
  std::string best_name;
  bool all_bitwise_identical = true;
  bool any_training_failed = !serial.trained;
  for (const io::PrefetchBackendKind kind : backends) {
    M3Options pipelined_options;
    pipelined_options.ram_budget_bytes = budget_bytes;
    pipelined_options.readahead_chunks = static_cast<uint64_t>(readahead);
    pipelined_options.pipeline_workers = static_cast<uint64_t>(workers);
    pipelined_options.advice = io::Advice::kSequential;
    pipelined_options.prefetch_backend = kind;
    pipelined_options.trace_path = trace;
    const EpochResult result =
        RunConfig(path, pipelined_options, static_cast<size_t>(iterations));
    const std::string name =
        "pipelined_" + std::string(io::PrefetchBackendKindToString(kind));
    add_row(name, result);
    reporter.Add(name, result.seconds, result.exec);
    // A failed run is an I/O/training error, not a determinism verdict:
    // only runs that actually trained get their bits compared.
    if (!result.trained) {
      any_training_failed = true;
    } else if (serial.trained &&
               !BitwiseEqual(result.weights, serial.weights)) {
      all_bitwise_identical = false;
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: %s weights differ from serial\n",
                   name.c_str());
    }
    if (best_name.empty() || result.seconds < best_seconds) {
      best_seconds = result.seconds;
      best_name = name;
    }
  }
  table.Print(stdout, csv);
  PrintExecCounters();
  if (any_training_failed) {
    std::printf("weights comparison INCOMPLETE: some configs failed to "
                "train (see stderr)\n");
  } else {
    std::printf("weights bitwise identical across all configs: %s\n",
                all_bitwise_identical ? "yes" : "NO");
  }
  if (util::Status json = reporter.Write(dir); !json.ok()) {
    std::fprintf(stderr, "bench JSON not written: %s\n",
                 json.ToString().c_str());
  }

  const double improvement =
      serial.seconds > 0
          ? (serial.seconds - best_seconds) / serial.seconds * 100.0
          : 0.0;
  std::printf("\nbest pipelined config (%s) is %.1f%% %s than serial "
              "(target: >= 15%% faster when the budget forces "
              "out-of-core behavior)\n",
              best_name.c_str(), std::abs(improvement),
              improvement >= 0 ? "faster" : "slower");
  M3_IGNORE_STATUS(io::RemoveFile(path), "best-effort scratch cleanup");
  return (all_bitwise_identical && !any_training_failed) ? 0 : 1;
}

}  // namespace
}  // namespace m3::bench

int main(int argc, char** argv) { return m3::bench::Run(argc, argv); }
