// Serial vs pipelined logistic-regression epochs under a constrained RAM
// budget. The serial configuration faults every chunk in synchronously
// (readahead disabled, kRandom advice so the kernel does not prefetch
// either); the pipelined configuration overlaps MADV_WILLNEED readahead of
// chunk i+1 with compute on chunk i and optionally fans the chunk
// map-reduce across engine workers. Both evict behind the scan under the
// same budget, so each pass re-reads the evicted bytes from storage — the
// out-of-core regime where overlap pays.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/m3.h"
#include "io/io_stats.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace m3::bench {
namespace {

struct EpochResult {
  double seconds = 0;
  io::ExecCounters exec;
  io::ResourceSample usage;
};

EpochResult RunConfig(const std::string& path, const M3Options& options,
                      size_t iterations) {
  auto dataset = MappedDataset::Open(path, options).ValueOrDie();
  (void)dataset.EvictAll();  // cold start: first pass reads from storage
  ml::LogisticRegressionOptions train_options;
  train_options.lbfgs = PaperLbfgsOptions();
  train_options.lbfgs.max_iterations = iterations;
  const io::ExecCounters exec_before = io::GlobalExecCounters();
  const io::ResourceSample before = io::ResourceSample::Now();
  util::Stopwatch watch;
  auto model = TrainLogisticRegression(dataset, train_options);
  EpochResult result;
  result.seconds = watch.ElapsedSeconds();
  result.usage = io::ResourceSample::Now() - before;
  result.exec = io::GlobalExecCounters() - exec_before;
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
  }
  return result;
}

int Run(int argc, char** argv) {
  int64_t size_mb = 96;
  int64_t budget_percent = 25;
  int64_t iterations = 3;
  int64_t readahead = 4;
  int64_t workers = 2;
  std::string dir = "/tmp";
  bool csv = false;
  util::FlagParser flags(
      "serial vs pipelined out-of-core logistic-regression epochs");
  flags.AddInt64("size_mb", &size_mb, "dataset size in MiB");
  flags.AddInt64("budget_percent", &budget_percent,
                 "RAM budget as percent of the dataset");
  flags.AddInt64("iterations", &iterations, "L-BFGS iterations per config");
  flags.AddInt64("readahead", &readahead,
                 "pipelined configuration readahead chunks");
  flags.AddInt64("workers", &workers,
                 "pipelined configuration engine workers");
  flags.AddString("dir", &dir, "scratch directory");
  flags.AddBool("csv", &csv, "emit CSV");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    return 0;
  }

  PrintPreamble("pipeline overlap: serial vs prefetch/evict-overlapped");
  const std::string path = dir + "/m3_pipeline_overlap.m3";
  if (auto st =
          EnsureDataset(path, ImagesForMb(static_cast<uint64_t>(size_mb)));
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const uint64_t budget_bytes =
      (static_cast<uint64_t>(size_mb) << 20) *
      static_cast<uint64_t>(budget_percent) / 100;
  std::printf("budget: %s (%lld%% of data) — every pass re-reads the "
              "evicted remainder\n\n",
              util::HumanBytes(budget_bytes).c_str(),
              static_cast<long long>(budget_percent));

  // Serial: no readahead, kRandom defeats kernel readahead so chunk
  // faults are truly synchronous — disk idles while we compute.
  M3Options serial_options;
  serial_options.ram_budget_bytes = budget_bytes;
  serial_options.readahead_chunks = 0;
  serial_options.pipeline_workers = 0;
  serial_options.advice = io::Advice::kRandom;

  // Pipelined: WILLNEED readahead runs on the engine's background thread
  // while compute consumes the current chunk.
  M3Options pipelined_options;
  pipelined_options.ram_budget_bytes = budget_bytes;
  pipelined_options.readahead_chunks = static_cast<uint64_t>(readahead);
  pipelined_options.pipeline_workers = static_cast<uint64_t>(workers);
  pipelined_options.advice = io::Advice::kSequential;

  const EpochResult serial =
      RunConfig(path, serial_options, static_cast<size_t>(iterations));
  const EpochResult pipelined =
      RunConfig(path, pipelined_options, static_cast<size_t>(iterations));

  util::TablePrinter table({"config", "epochs_s", "read", "major_faults",
                            "prefetches", "stalls", "evicted"});
  auto add_row = [&](const char* name, const EpochResult& r) {
    table.AddRow({name, util::StrFormat("%.3f", r.seconds),
                  util::HumanBytes(r.usage.io.read_bytes),
                  util::StrFormat("%lld",
                                  static_cast<long long>(r.usage.faults.major)),
                  util::StrFormat("%llu", static_cast<unsigned long long>(
                                              r.exec.prefetches)),
                  util::StrFormat("%llu", static_cast<unsigned long long>(
                                              r.exec.stalls)),
                  util::HumanBytes(r.exec.bytes_evicted)});
  };
  add_row("serial", serial);
  add_row("pipelined", pipelined);
  table.Print(stdout, csv);
  PrintExecCounters();
  JsonReporter reporter("pipeline_overlap");
  reporter.Add("serial", serial.seconds, serial.exec);
  reporter.Add("pipelined", pipelined.seconds, pipelined.exec);
  if (util::Status json = reporter.Write(dir); !json.ok()) {
    std::fprintf(stderr, "bench JSON not written: %s\n",
                 json.ToString().c_str());
  }

  const double improvement =
      serial.seconds > 0
          ? (serial.seconds - pipelined.seconds) / serial.seconds * 100.0
          : 0.0;
  std::printf("\npipelined epochs are %.1f%% %s than serial "
              "(target: >= 15%% faster when the budget forces "
              "out-of-core behavior)\n",
              std::abs(improvement),
              improvement >= 0 ? "faster" : "slower");
  (void)io::RemoveFile(path);
  return 0;
}

}  // namespace
}  // namespace m3::bench

int main(int argc, char** argv) { return m3::bench::Run(argc, argv); }
