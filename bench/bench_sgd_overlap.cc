// Hand-rolled vs engine-driven shuffled SGD under a constrained RAM
// budget. The hand-rolled configuration is the loop src/ml/sgd.cc used
// before the engine port: visit shuffled minibatches, fault each batch's
// pages synchronously, evict a trailing window by hand — the disk idles
// while we compute. The engine configuration runs the identical schedule
// through exec::ChunkPipeline: MADV_WILLNEED walks the epoch's permutation
// `readahead` positions ahead of the weight updates and the engine's
// visit-order window evicts behind them. Both visit the same batches in
// the same order with the same arithmetic, so the trained weights are
// bitwise identical — only the I/O overlap differs.

#include <cstdio>
#include <cstring>
#include <deque>

#include "bench/bench_common.h"
#include "core/m3.h"
#include "exec/chunk_schedule.h"
#include "io/io_stats.h"
#include "la/blas.h"
#include "ml/sgd.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace m3::bench {
namespace {

struct SgdConfig {
  std::string name;
  size_t readahead = 0;  ///< 0 = hand-rolled synchronous loop
  size_t workers = 0;
};

struct SgdRun {
  double seconds = 0;
  la::Vector weights;
  io::ExecCounters exec;
  /// Engine runs also carry the pipeline's full stats (per-stage seconds,
  /// stall/compute duration percentiles) for the bench JSON; hand-rolled
  /// runs have only the counters.
  exec::PipelineStats stats;
  bool has_stats = false;
};

struct BenchParams {
  uint64_t budget_bytes = 0;
  size_t epochs = 3;
  size_t batch_rows = 512;
  uint64_t seed = 42;

  /// The SGD hyperparameters both configurations share; the hand-rolled
  /// loop reads learning_rate/decay from here so the two paths cannot
  /// silently diverge arithmetically.
  ml::SgdOptions MakeSgdOptions() const {
    ml::SgdOptions options;
    options.epochs = epochs;
    options.batch_rows = batch_rows;
    options.seed = seed;
    return options;
  }
};

/// The pre-port SGD loop: shuffled contiguous batches, synchronous page
/// faults, manual trailing-window eviction. Kept verbatim as the bench
/// baseline so the engine port has a hand-rolled reference to beat.
SgdRun RunHandRolled(MappedDataset& dataset, la::ConstVectorView y,
                     const BenchParams& params) {
  const ml::SgdOptions sgd = params.MakeSgdOptions();
  const uint64_t row_bytes = dataset.cols() * sizeof(double);
  // Hand-rolled evictions bypass the engine, so report them to the
  // process-wide counters ourselves — otherwise the bench table and JSON
  // would show a baseline that appears to do no eviction work.
  io::ExecCounters manual;
  // The final full-data pass must stay under the same budget as the
  // epochs (the engine config evicts on every pass), so hook a linear
  // trailing-cursor eviction onto the objective's full scans.
  uint64_t scan_cursor = 0;
  ml::ScanHooks hooks;
  hooks.before_pass = [&](size_t) { scan_cursor = 0; };
  hooks.after_chunk = [&](size_t, size_t end) {
    const uint64_t scanned = end * row_bytes;
    if (scanned <= params.budget_bytes) {
      return;
    }
    const uint64_t evict_end = scanned - params.budget_bytes;
    if (evict_end <= scan_cursor) {
      return;
    }
    if (dataset.mapping()
            .Evict(dataset.meta().features_offset + scan_cursor,
                   evict_end - scan_cursor)
            .ok()) {
      ++manual.evictions;
      manual.bytes_evicted += evict_end - scan_cursor;
    }
    scan_cursor = evict_end;
  };
  ml::LogisticRegressionObjective objective(dataset.features(), y, 1e-4,
                                            /*chunk_rows=*/0, hooks);
  const size_t n = objective.NumRows();
  la::RowChunker chunker(n, sgd.batch_rows);
  util::Rng rng(sgd.seed);

  SgdRun run;
  run.weights = la::Vector(objective.Dimension());
  la::VectorView w = run.weights.View();
  la::Vector grad(w.size());
  std::deque<std::pair<uint64_t, uint64_t>> resident;  // (offset, length)
  uint64_t resident_bytes = 0;
  size_t step_index = 0;
  const io::ExecCounters exec_before = io::GlobalExecCounters();
  util::Stopwatch watch;
  for (size_t epoch = 0; epoch < sgd.epochs; ++epoch) {
    const exec::ChunkSchedule schedule =
        exec::ChunkSchedule::Shuffled(chunker.NumChunks(), rng.Next());
    for (size_t pos = 0; pos < schedule.num_chunks(); ++pos) {
      const la::RowChunker::Range range = chunker.Chunk(schedule.At(pos));
      grad.SetZero();
      const double scale =
          static_cast<double>(n) / static_cast<double>(range.size());
      objective.EvaluateChunk(range.begin, range.end, w, grad);
      const double lr =
          sgd.learning_rate /
          (1.0 + sgd.decay * static_cast<double>(step_index));
      la::Axpy(-lr * scale, grad, w);
      ++step_index;
      // Trailing-window eviction by hand (what the engine's evict stage
      // now does for every schedule-driven scan).
      resident.emplace_back(
          dataset.meta().features_offset + range.begin * row_bytes,
          range.size() * row_bytes);
      resident_bytes += resident.back().second;
      while (resident_bytes > params.budget_bytes && !resident.empty()) {
        if (dataset.mapping()
                .Evict(resident.front().first, resident.front().second)
                .ok()) {
          ++manual.evictions;
          manual.bytes_evicted += resident.front().second;
        }
        resident_bytes -= resident.front().second;
        resident.pop_front();
      }
    }
  }
  grad.SetZero();
  objective.EvaluateWithGradient(w, grad);  // final full-data pass
  run.seconds = watch.ElapsedSeconds();
  io::AddExecCounters(manual);
  run.exec = io::GlobalExecCounters() - exec_before;
  return run;
}

SgdRun RunEngine(MappedDataset& dataset, la::ConstVectorView y,
                 const BenchParams& params, const SgdConfig& config) {
  ml::LogisticRegressionObjective objective(dataset.features(), y, 1e-4);
  exec::MappedRegion region;
  region.mapping = &dataset.mapping();
  region.base_offset = dataset.meta().features_offset;
  region.row_bytes = dataset.cols() * sizeof(double);
  exec::PipelineOptions pipeline_options;
  pipeline_options.readahead_chunks = config.readahead;
  pipeline_options.num_workers = config.workers;
  pipeline_options.ram_budget_bytes = params.budget_bytes;
  pipeline_options.advice = io::Advice::kNormal;
  exec::ChunkPipeline pipeline(region, pipeline_options);
  objective.set_pipeline(&pipeline);
  const ml::SgdOptions sgd_options = params.MakeSgdOptions();

  SgdRun run;
  run.weights = la::Vector(objective.Dimension());
  const io::ExecCounters exec_before = io::GlobalExecCounters();
  util::Stopwatch watch;
  auto result = ml::Sgd(sgd_options).Minimize(&objective, run.weights.View());
  run.seconds = watch.ElapsedSeconds();
  run.exec = io::GlobalExecCounters() - exec_before;
  run.stats = pipeline.stats();
  run.has_stats = true;
  objective.set_pipeline(nullptr);
  if (!result.ok()) {
    std::fprintf(stderr, "SGD failed: %s\n",
                 result.status().ToString().c_str());
  }
  return run;
}

int Run(int argc, char** argv) {
  int64_t size_mb = 96;
  int64_t budget_percent = 25;
  int64_t epochs = 3;
  int64_t batch_rows = 512;
  int64_t readahead = 4;
  std::string dir = "/tmp";
  bool csv = false;
  std::string trace;
  util::FlagParser flags(
      "hand-rolled vs engine-driven shuffled SGD epochs under a RAM budget");
  flags.AddInt64("size_mb", &size_mb, "dataset size in MiB");
  flags.AddInt64("budget_percent", &budget_percent,
                 "RAM budget as percent of the dataset");
  flags.AddInt64("epochs", &epochs, "SGD epochs per config");
  flags.AddInt64("batch_rows", &batch_rows, "rows per minibatch");
  flags.AddInt64("readahead", &readahead,
                 "engine configuration readahead chunks");
  flags.AddString("dir", &dir, "scratch directory");
  flags.AddBool("csv", &csv, "emit CSV");
  flags.AddString("trace", &trace,
                  "write a Chrome trace-event JSON of the run to this path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    return UsageError(flags, argv[0], st.ToString());
  }
  if (flags.help_requested()) {
    return 0;
  }
  if (!ValidateBenchFlags(flags, argv[0], {{"size_mb", size_mb}, {"budget_percent", budget_percent}, {"epochs", epochs}, {"batch_rows", batch_rows}, {"readahead", readahead}},
                          {}, &trace)) {
    return 1;
  }

  PrintPreamble("sgd overlap: hand-rolled loop vs schedule-aware engine");
  TraceSession trace_session(trace);
  const std::string path = dir + "/m3_sgd_overlap.m3";
  if (auto st =
          EnsureDataset(path, ImagesForMb(static_cast<uint64_t>(size_mb)));
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  BenchParams params;
  params.budget_bytes = (static_cast<uint64_t>(size_mb) << 20) *
                        static_cast<uint64_t>(budget_percent) / 100;
  params.epochs = static_cast<size_t>(epochs);
  params.batch_rows = static_cast<size_t>(batch_rows);
  std::printf("budget: %s (%lld%% of data) — every epoch re-reads the "
              "evicted remainder through the mapping\n\n",
              util::HumanBytes(params.budget_bytes).c_str(),
              static_cast<long long>(budget_percent));

  auto dataset = MappedDataset::Open(path).ValueOrDie();
  const std::vector<double> labels = dataset.CopyLabels();
  const la::ConstVectorView y(labels.data(), labels.size());

  const std::vector<SgdConfig> configs = {
      {"handrolled", 0, 0},
      {"engine", static_cast<size_t>(readahead), 0},
      {"engine_w2", static_cast<size_t>(readahead), 2},
  };
  std::vector<SgdRun> runs;
  for (const SgdConfig& config : configs) {
    M3_IGNORE_STATUS(dataset.Advise(io::Advice::kNormal), "advisory madvise");
    // cold start: first epoch reads from storage
    M3_IGNORE_STATUS(dataset.EvictAll(), "best-effort cold-start evict");
    runs.push_back(config.readahead == 0
                       ? RunHandRolled(dataset, y, params)
                       : RunEngine(dataset, y, params, config));
  }

  util::TablePrinter table({"config", "epochs_s", "prefetches", "hits",
                            "stalls", "evicted"});
  JsonReporter reporter("sgd_overlap");
  for (size_t i = 0; i < configs.size(); ++i) {
    table.AddRow(
        {configs[i].name, util::StrFormat("%.3f", runs[i].seconds),
         util::StrFormat("%llu",
                         static_cast<unsigned long long>(
                             runs[i].exec.prefetches)),
         util::StrFormat("%llu",
                         static_cast<unsigned long long>(
                             runs[i].exec.prefetch_hits)),
         util::StrFormat("%llu",
                         static_cast<unsigned long long>(runs[i].exec.stalls)),
         util::HumanBytes(runs[i].exec.bytes_evicted)});
    // Engine configs report the pipeline's full stats so the JSON carries
    // stall/compute duration percentiles next to the counters.
    if (runs[i].has_stats) {
      reporter.Add(configs[i].name, runs[i].seconds, runs[i].stats);
    } else {
      reporter.Add(configs[i].name, runs[i].seconds, runs[i].exec);
    }
  }
  table.Print(stdout, csv);
  PrintExecCounters();
  if (util::Status json = reporter.Write(dir); !json.ok()) {
    std::fprintf(stderr, "bench JSON not written: %s\n",
                 json.ToString().c_str());
  }

  // Same schedule, same arithmetic: every config must train the exact
  // same model bits regardless of engine or worker count.
  bool identical = true;
  for (size_t i = 1; i < runs.size(); ++i) {
    identical &= runs[i].weights.size() == runs[0].weights.size() &&
                 std::memcmp(runs[i].weights.data(), runs[0].weights.data(),
                             runs[0].weights.size() * sizeof(double)) == 0;
  }
  std::printf("\nweights bitwise identical across configs: %s\n",
              identical ? "yes" : "NO — determinism regression");

  const double improvement =
      runs[0].seconds > 0
          ? (runs[0].seconds - runs[1].seconds) / runs[0].seconds * 100.0
          : 0.0;
  std::printf("engine-driven shuffled SGD is %.1f%% %s than the "
              "hand-rolled loop (target: faster, with hits > stalls)\n",
              std::abs(improvement),
              improvement >= 0 ? "faster" : "slower");
  M3_IGNORE_STATUS(io::RemoveFile(path), "best-effort scratch cleanup");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace m3::bench

int main(int argc, char** argv) { return m3::bench::Run(argc, argv); }
