// Measured I/O/compute overlap inside the simulated Spark cluster. Every
// partition task runs through a real per-partition exec::ChunkPipeline
// bound to the mmap'd dataset: each instance walks its shard in the
// strided task order, cached partitions scan with WILLNEED readahead and
// trailing eviction under the instance's RAM budget (their pages survive
// between jobs — the RDD cache, measured), and spilled partitions are
// force-evicted before every job so each use re-faults from storage (the
// per-iteration spill re-read the cost model charges, now observable).
//
// The headline checks: at a ~25% RAM budget, cached partitions should show
// prefetch hits >> stalls per instance; spilled partitions should show
// re-fault counters growing every job; and the trained weights must be
// bitwise identical to the non-pipelined simulator.
//
// The measured run then CALIBRATES the cost model
// (ClusterConfig::CalibrateFromMeasured: spill re-read bandwidth, overlap
// efficiency and local CPU cost fitted from the per-instance hit/stall
// stats — no hardcoded spill constant on this path) and a second run
// reports the calibrated model's predicted-vs-measured execution residual
// per job, which lands in BENCH_cluster_overlap.json.

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "cluster/spark_cluster.h"
#include "core/m3.h"
#include "io/io_stats.h"
#include "la/blas.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace m3::bench {
namespace {

struct ClusterRun {
  double seconds = 0;
  la::Vector weights;
  cluster::JobStats stats;
  io::ExecCounters exec;
};

ClusterRun RunLr(const cluster::SparkCluster& spark, MappedDataset& dataset,
                 la::ConstVectorView y, size_t iterations,
                 bool bind_mapping) {
  ml::LbfgsOptions lbfgs;
  lbfgs.max_iterations = iterations;
  lbfgs.gradient_tolerance = 0;
  lbfgs.objective_tolerance = 0;

  exec::MappedRegion region;
  if (bind_mapping) {
    region.mapping = &dataset.mapping();
    region.base_offset = dataset.meta().features_offset;
    region.row_bytes = dataset.cols() * sizeof(double);
  }

  ClusterRun run;
  const io::ExecCounters before = io::GlobalExecCounters();
  util::Stopwatch watch;
  auto result = spark.RunLogisticRegression(dataset.features(), y, 1e-4,
                                            lbfgs, region);
  run.seconds = watch.ElapsedSeconds();
  run.exec = io::GlobalExecCounters() - before;
  if (!result.ok()) {
    std::fprintf(stderr, "distributed LR failed: %s\n",
                 result.status().ToString().c_str());
    return run;
  }
  run.weights = std::move(result.value().model.weights);
  run.stats = std::move(result.value().stats);
  return run;
}

int Run(int argc, char** argv) {
  int64_t size_mb = 96;
  int64_t budget_percent = 25;
  int64_t instances = 4;
  int64_t iterations = 5;
  int64_t readahead = 4;
  int64_t workers = 0;
  std::string dir = "/tmp";
  bool csv = false;
  std::string trace;
  util::FlagParser flags(
      "simulated-cluster partition tasks through per-partition pipelines "
      "under a per-instance RAM budget");
  flags.AddInt64("size_mb", &size_mb, "dataset size in MiB");
  flags.AddInt64("budget_percent", &budget_percent,
                 "aggregate simulated cache (and measured per-instance "
                 "budget) as percent of the dataset");
  flags.AddInt64("instances", &instances, "simulated instances");
  flags.AddInt64("iterations", &iterations, "L-BFGS iterations (jobs)");
  flags.AddInt64("readahead", &readahead, "pipeline readahead chunks");
  flags.AddInt64("workers", &workers, "pipeline workers per partition");
  flags.AddString("dir", &dir, "scratch directory");
  flags.AddBool("csv", &csv, "emit CSV");
  flags.AddString("trace", &trace,
                  "write a Chrome trace-event JSON of the run to this path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    return UsageError(flags, argv[0], st.ToString());
  }
  if (flags.help_requested()) {
    return 0;
  }
  if (!ValidateBenchFlags(flags, argv[0], {{"size_mb", size_mb}, {"budget_percent", budget_percent}, {"instances", instances}, {"iterations", iterations}, {"readahead", readahead}},
                          {{"workers", workers}}, &trace)) {
    return 1;
  }

  PrintPreamble("cluster overlap: per-partition pipelines in the simulator");
  TraceSession trace_session(trace);
  const std::string path = dir + "/m3_cluster_overlap.m3";
  if (auto st =
          EnsureDataset(path, ImagesForMb(static_cast<uint64_t>(size_mb)));
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto dataset = MappedDataset::Open(path).ValueOrDie();
  const std::vector<double> labels = dataset.CopyLabels();
  const la::ConstVectorView y(labels.data(), labels.size());

  // The simulated per-instance cache doubles as the measured per-instance
  // RAM budget, so the cached/spilled split and the paging regime agree:
  // budget_percent of the dataset is cached cluster-wide, the rest spills
  // and re-faults every job.
  cluster::ClusterConfig config;
  config.num_instances = static_cast<size_t>(instances);
  config.cores_per_instance = 2;
  config.partitions_per_core = 2;
  config.cache_fraction = 1.0;
  config.instance_ram_bytes = dataset.feature_bytes() *
                              static_cast<uint64_t>(budget_percent) / 100 /
                              static_cast<uint64_t>(instances);
  config.exec.use_pipelines = true;
  config.exec.readahead_chunks = static_cast<size_t>(readahead);
  config.exec.pipeline_workers = static_cast<size_t>(workers);
  config.exec.trace_path = trace;
  const size_t total_partitions = config.TotalPartitions();
  config.exec.chunk_rows =
      std::max<uint64_t>(1, dataset.rows() / (total_partitions * 8));

  cluster::ClusterConfig reference = config;
  reference.exec.use_pipelines = false;

  cluster::SparkCluster pipelined(config);
  cluster::SparkCluster inline_reference(reference);
  const auto partitions = pipelined.PlanPartitions(
      dataset.rows(), dataset.cols() * sizeof(double));
  std::printf(
      "%s\n%zu partitions (%zu spilled), budget %s/instance, "
      "%lld optimizer iterations\n\n",
      config.ToString().c_str(), partitions.size(),
      cluster::CountSpilled(partitions),
      util::HumanBytes(config.InstanceCacheBytes()).c_str(),
      static_cast<long long>(iterations));

  M3_IGNORE_STATUS(dataset.EvictAll(), "best-effort cold-start evict");
  ClusterRun baseline = RunLr(inline_reference, dataset, y,
                              static_cast<size_t>(iterations),
                              /*bind_mapping=*/false);
  M3_IGNORE_STATUS(dataset.EvictAll(), "best-effort cold-start evict");
  ClusterRun measured = RunLr(pipelined, dataset, y,
                              static_cast<size_t>(iterations),
                              /*bind_mapping=*/true);

  util::TablePrinter table({"instance", "class", "passes", "prefetches",
                            "hits", "stalls", "refaults", "evicted"});
  JsonReporter reporter("cluster_overlap");
  reporter.Add("inline_reference", baseline.seconds, baseline.exec);
  reporter.Add("pipelined_total", measured.seconds, measured.exec);
  uint64_t cached_hits = 0, cached_stalls = 0, refaults = 0;
  for (size_t i = 0; i < measured.stats.instance_exec.size(); ++i) {
    const cluster::InstanceExecStats& instance =
        measured.stats.instance_exec[i];
    cached_hits += instance.cached.prefetch_hits;
    cached_stalls += instance.cached.stalls;
    refaults += instance.spill_refaults;
    for (const bool cached : {true, false}) {
      const exec::PipelineStats& stats =
          cached ? instance.cached : instance.spilled;
      table.AddRow(
          {util::StrFormat("%zu", i), cached ? "cached" : "spilled",
           util::StrFormat("%llu",
                           static_cast<unsigned long long>(stats.passes)),
           util::StrFormat("%llu",
                           static_cast<unsigned long long>(stats.prefetches)),
           util::StrFormat(
               "%llu", static_cast<unsigned long long>(stats.prefetch_hits)),
           util::StrFormat("%llu",
                           static_cast<unsigned long long>(stats.stalls)),
           cached ? std::string("-")
                  : util::StrFormat("%llu", static_cast<unsigned long long>(
                                                instance.spill_refaults)),
           util::HumanBytes(stats.bytes_evicted)});
      // Full PipelineStats (not just counters): the per-instance cases
      // carry stage seconds and the stall/compute duration percentiles.
      reporter.Add(
          util::StrFormat("instance%zu_%s", i,
                          cached ? "cached" : "spilled"),
          stats.drive_seconds, stats,
          {{"spill_refaults", cached ? 0 : instance.spill_refaults},
           {"spill_refault_bytes",
            cached ? 0 : instance.spill_refault_bytes}});
    }
  }
  table.Print(stdout, csv);
  std::printf("simulated (unchanged by pipelines): %s\n",
              measured.stats.ToString().c_str());
  PrintExecCounters();

  // Close the loop: fit the cost model's spill/overlap/CPU constants from
  // the measured run, then re-run under the calibrated config and report
  // the model's predicted-vs-measured execution residual per job.
  cluster::ClusterConfig calibrated_config = config;
  util::Status calibrated_status =
      calibrated_config.CalibrateFromMeasured(measured.stats);
  bool residuals_ok = false;
  if (calibrated_status.ok()) {
    std::printf(
        "\ncalibrated from measured stats: spill=%s/s (was hardcoded "
        "40 MB/s) overlap=%.2f cpu=%.3g s/B\n",
        util::HumanBytes(static_cast<uint64_t>(
                             calibrated_config.spill_read_bytes_per_sec))
            .c_str(),
        calibrated_config.overlap_efficiency,
        calibrated_config.local_cpu_seconds_per_byte);
    M3_IGNORE_STATUS(dataset.EvictAll(), "best-effort cold-start evict");
    cluster::SparkCluster calibrated(calibrated_config);
    ClusterRun rerun = RunLr(calibrated, dataset, y,
                             static_cast<size_t>(iterations),
                             /*bind_mapping=*/true);
    const double predicted = rerun.stats.predicted_exec_seconds;
    const double measured_exec = rerun.stats.measured_exec_seconds;
    const double per_job =
        rerun.stats.jobs > 0 ? static_cast<double>(rerun.stats.jobs) : 1.0;
    std::printf(
        "calibrated run: measured exec %.3fs vs predicted %.3fs over %zu "
        "jobs (mean residual %+.3fs/job)\n",
        measured_exec, predicted, rerun.stats.jobs,
        (predicted - measured_exec) / per_job);
    reporter.Add(
        "calibrated_rerun", rerun.seconds, rerun.exec,
        {{"jobs", rerun.stats.jobs}},
        {{"measured_exec_seconds", measured_exec},
         {"predicted_exec_seconds", predicted},
         {"residual_seconds", predicted - measured_exec},
         {"spill_read_bytes_per_sec",
          calibrated_config.spill_read_bytes_per_sec},
         {"overlap_efficiency", calibrated_config.overlap_efficiency},
         {"local_cpu_seconds_per_byte",
          calibrated_config.local_cpu_seconds_per_byte}});
    const bool rerun_identical =
        baseline.weights.size() == rerun.weights.size() &&
        std::memcmp(baseline.weights.data(), rerun.weights.data(),
                    baseline.weights.size() * sizeof(double)) == 0;
    // The residual is informational (it tracks drift in the nightly
    // JSON); what gates the exit is that the calibrated path actually
    // produced predictions and did not perturb the math.
    residuals_ok = rerun_identical && predicted > 0 && measured_exec > 0;
    if (!residuals_ok) {
      std::fprintf(stderr,
                   "calibrated re-run failed its checks (identical=%d "
                   "predicted=%.3f measured=%.3f)\n",
                   rerun_identical, predicted, measured_exec);
    }
  } else {
    std::fprintf(stderr, "calibration failed: %s\n",
                 calibrated_status.ToString().c_str());
  }

  const util::Status json = reporter.Write(dir);
  if (!json.ok()) {
    std::fprintf(stderr, "bench JSON not written: %s\n",
                 json.ToString().c_str());
  }

  const bool identical =
      baseline.weights.size() == measured.weights.size() &&
      std::memcmp(baseline.weights.data(), measured.weights.data(),
                  baseline.weights.size() * sizeof(double)) == 0;
  const bool refaulting = refaults > 0;
  const bool hits_dominate = cached_hits > cached_stalls;
  std::printf(
      "\nweights bitwise identical to the non-pipelined simulator: %s\n"
      "cached partitions: %llu hits vs %llu stalls (%s)\n"
      "spilled partitions: %llu forced re-faults across %zu jobs (%s)\n"
      "pipelined wall %.3fs vs inline %.3fs\n",
      identical ? "yes" : "NO — determinism regression",
      static_cast<unsigned long long>(cached_hits),
      static_cast<unsigned long long>(cached_stalls),
      hits_dominate ? "hits dominate" : "STALLS DOMINATE",
      static_cast<unsigned long long>(refaults), measured.stats.jobs,
      refaulting ? "re-faulting observed" : "NO RE-FAULTING",
      measured.seconds, baseline.seconds);
  M3_IGNORE_STATUS(io::RemoveFile(path), "best-effort scratch cleanup");
  // hits >> stalls gates the exit at every worker count. These partition
  // scans compute inside `map` (MapReduceChunks), so the kMap race —
  // sampled when a worker actually starts the map, with the warm-up
  // window widened to the in-flight dispatch burst — judges exactly the
  // stage that touches the pages; the old workers>=2 exemption covered
  // retire-compute scans, which now classify at retire (RaceStage) and
  // do not occur on this path.
  return identical && refaulting && hits_dominate && residuals_ok &&
                 json.ok()
             ? 0
             : 1;
}

}  // namespace
}  // namespace m3::bench

int main(int argc, char** argv) { return m3::bench::Run(argc, argv); }
