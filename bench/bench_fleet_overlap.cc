// The real process fleet against the calibrated cost model. Where
// bench_cluster_overlap measures per-partition pipelines inside ONE
// process, this bench forks cluster::ProcessFleet workers — each with its
// own mmap of the shard, genuinely competing for the machine's page cache
// — and checks three things:
//
//   1. DETERMINISM: the fleet's trained weights are bitwise identical to
//      the in-process simulator's under the same config (the fold order
//      and kernels are shared; only the process boundary differs).
//   2. MODEL FIT: the cost model is first CALIBRATED from a measured
//      simulator run (ClusterConfig::CalibrateFromMeasured), then the
//      fleet runs under the calibrated config and its measured execution
//      seconds are compared against the model's prediction — the
//      predicted-vs-measured residual per job lands in
//      BENCH_fleet_overlap.json.
//   3. RESIDENCY + STALLS: per-worker prefetch hit/stall counts cross the
//      shm boundary (PipelineStats::ToJson) and are reported next to the
//      dataset's page residency after the fleet run.
//
// Fork safety: the fleet is spawned BEFORE the parent's TraceSession — the
// session starts a sampler thread, and ProcessFleet::Spawn must fork a
// single-threaded parent. Worker traces go to --worker_trace_dir.

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "cluster/process_fleet.h"
#include "cluster/spark_cluster.h"
#include "core/m3.h"
#include "io/io_stats.h"
#include "la/blas.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace m3::bench {
namespace {

ml::LbfgsOptions FleetLbfgs(size_t iterations) {
  ml::LbfgsOptions lbfgs;
  lbfgs.max_iterations = iterations;
  lbfgs.gradient_tolerance = 0;
  lbfgs.objective_tolerance = 0;
  return lbfgs;
}

int Run(int argc, char** argv) {
  int64_t size_mb = 64;
  int64_t budget_percent = 50;
  int64_t fleet = 2;
  int64_t iterations = 3;
  int64_t readahead = 4;
  int64_t workers = 0;
  double deadline_seconds = 120;
  std::string dir = "/tmp";
  std::string worker_trace_dir;
  bool csv = false;
  std::string trace;
  util::FlagParser flags(
      "forked process-fleet workers vs the in-process simulator: bitwise "
      "determinism, calibrated cost-model residual, residency and stalls");
  flags.AddInt64("size_mb", &size_mb, "dataset size in MiB");
  flags.AddInt64("budget_percent", &budget_percent,
                 "aggregate simulated cache as percent of the dataset");
  flags.AddInt64("fleet", &fleet, "fleet size (worker processes)");
  flags.AddInt64("iterations", &iterations, "L-BFGS iterations (jobs)");
  flags.AddInt64("readahead", &readahead, "pipeline readahead chunks");
  flags.AddInt64("workers", &workers, "pipeline workers per partition");
  flags.AddDouble("deadline_seconds", &deadline_seconds,
                  "fleet per-phase deadline");
  flags.AddString("dir", &dir, "scratch directory");
  flags.AddString("worker_trace_dir", &worker_trace_dir,
                  "write per-worker Chrome traces (worker_<i>.json) here");
  flags.AddBool("csv", &csv, "emit CSV");
  flags.AddString("trace", &trace,
                  "write the parent's Chrome trace-event JSON to this path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    return UsageError(flags, argv[0], st.ToString());
  }
  if (flags.help_requested()) {
    return 0;
  }
  if (!ValidateBenchFlags(flags, argv[0],
                          {{"size_mb", size_mb},
                           {"budget_percent", budget_percent},
                           {"fleet", fleet},
                           {"iterations", iterations},
                           {"readahead", readahead}},
                          {{"workers", workers}}, &trace)) {
    return 1;
  }
  if (deadline_seconds <= 0) {
    return UsageError(flags, argv[0], "--deadline_seconds must be positive");
  }

  PrintPreamble("fleet overlap: forked workers vs the simulator");
  const std::string path = dir + "/m3_fleet_overlap.m3";
  if (auto st =
          EnsureDataset(path, ImagesForMb(static_cast<uint64_t>(size_mb)));
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto dataset = MappedDataset::Open(path).ValueOrDie();
  const std::vector<double> labels = dataset.CopyLabels();
  const la::ConstVectorView y(labels.data(), labels.size());

  cluster::ClusterConfig config;
  config.num_instances = static_cast<size_t>(fleet);
  config.cores_per_instance = 2;
  config.partitions_per_core = 2;
  config.cache_fraction = 1.0;
  config.instance_ram_bytes = dataset.feature_bytes() *
                              static_cast<uint64_t>(budget_percent) / 100 /
                              static_cast<uint64_t>(fleet);
  config.exec.use_pipelines = true;
  config.exec.readahead_chunks = static_cast<size_t>(readahead);
  config.exec.pipeline_workers = static_cast<size_t>(workers);
  const size_t total_partitions = config.TotalPartitions();
  config.exec.chunk_rows =
      std::max<uint64_t>(1, dataset.rows() / (total_partitions * 8));

  // Phase 1: measured simulator run — the determinism baseline AND the
  // calibration input for the cost model the fleet is judged against.
  cluster::SparkCluster simulator(config);
  exec::MappedRegion region;
  region.mapping = &dataset.mapping();
  region.base_offset = dataset.meta().features_offset;
  region.row_bytes = dataset.cols() * sizeof(double);
  M3_IGNORE_STATUS(dataset.EvictAll(), "best-effort cold-start evict");
  util::Stopwatch sim_watch;
  auto sim = simulator.RunLogisticRegression(
      dataset.features(), y, 1e-4,
      FleetLbfgs(static_cast<size_t>(iterations)), region);
  if (!sim.ok()) {
    std::fprintf(stderr, "simulator LR failed: %s\n",
                 sim.status().ToString().c_str());
    return 1;
  }
  const double sim_seconds = sim_watch.ElapsedSeconds();

  cluster::ClusterConfig calibrated = config;
  const util::Status calibration =
      calibrated.CalibrateFromMeasured(sim.value().stats);
  if (!calibration.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 calibration.ToString().c_str());
  }

  // Phase 2: the real fleet under the calibrated config. Spawn forks, so
  // it happens while this process is still single-threaded — the
  // simulator's pipeline pools are joined, and the parent's TraceSession
  // (sampler thread) starts strictly after.
  if (!worker_trace_dir.empty()) {
    if (auto st = io::MakeDirs(worker_trace_dir); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  cluster::FleetOptions fleet_options;
  fleet_options.config = calibrated;
  fleet_options.phase_deadline_seconds = deadline_seconds;
  fleet_options.worker_trace_dir = worker_trace_dir;
  auto fleet_or = cluster::ProcessFleet::Spawn(path, fleet_options);
  if (!fleet_or.ok()) {
    std::fprintf(stderr, "fleet spawn failed: %s\n",
                 fleet_or.status().ToString().c_str());
    return 1;
  }
  auto& process_fleet = *fleet_or.value();

  TraceSession trace_session(trace);
  M3_IGNORE_STATUS(dataset.EvictAll(), "best-effort cold-start evict");
  util::Stopwatch fleet_watch;
  auto run = process_fleet.RunLogisticRegression(
      1e-4, FleetLbfgs(static_cast<size_t>(iterations)));
  const double fleet_seconds = fleet_watch.ElapsedSeconds();
  if (!run.ok()) {
    std::fprintf(stderr, "fleet LR failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const util::Status shutdown = process_fleet.Shutdown();
  if (!shutdown.ok()) {
    std::fprintf(stderr, "fleet shutdown: %s\n",
                 shutdown.ToString().c_str());
  }

  // Residency after the fleet ran: how much of the dataset the competing
  // workers left in the page cache (their mappings share it with ours).
  uint64_t resident_pages = 0;
  uint64_t total_pages = 0;
  if (auto resident = dataset.mapping().CountResidentPages(
          0, dataset.mapping().size());
      resident.ok()) {
    resident_pages = resident.value();
    total_pages = (dataset.mapping().size() + util::PageSize() - 1) /
                  util::PageSize();
  }

  // Per-worker stall/hit table from the stats that crossed the shm
  // boundary as PipelineStats JSON.
  const cluster::JobStats& stats = run.value().stats;
  util::TablePrinter table({"worker", "class", "passes", "prefetches",
                            "hits", "stalls", "refaults", "evicted"});
  JsonReporter reporter("fleet_overlap");
  reporter.Add("simulator_total", sim_seconds, io::ExecCounters());
  uint64_t fleet_stalls = 0;
  uint64_t fleet_hits = 0;
  for (size_t w = 0; w < stats.instance_exec.size(); ++w) {
    const cluster::InstanceExecStats& instance = stats.instance_exec[w];
    fleet_hits += instance.cached.prefetch_hits;
    fleet_stalls += instance.cached.stalls + instance.spilled.stalls;
    for (const bool cached : {true, false}) {
      const exec::PipelineStats& side =
          cached ? instance.cached : instance.spilled;
      table.AddRow(
          {util::StrFormat("%zu", w), cached ? "cached" : "spilled",
           util::StrFormat("%llu",
                           static_cast<unsigned long long>(side.passes)),
           util::StrFormat("%llu",
                           static_cast<unsigned long long>(side.prefetches)),
           util::StrFormat(
               "%llu", static_cast<unsigned long long>(side.prefetch_hits)),
           util::StrFormat("%llu",
                           static_cast<unsigned long long>(side.stalls)),
           cached ? std::string("-")
                  : util::StrFormat("%llu", static_cast<unsigned long long>(
                                                instance.spill_refaults)),
           util::HumanBytes(side.bytes_evicted)});
      reporter.Add(
          util::StrFormat("worker%zu_%s", w, cached ? "cached" : "spilled"),
          side.drive_seconds, side,
          {{"spill_refaults", cached ? 0 : instance.spill_refaults},
           {"spill_refault_bytes",
            cached ? 0 : instance.spill_refault_bytes}});
    }
  }
  table.Print(stdout, csv);

  const double predicted = stats.predicted_exec_seconds;
  const double measured_exec = stats.measured_exec_seconds;
  const double per_job =
      stats.jobs > 0 ? static_cast<double>(stats.jobs) : 1.0;
  reporter.Add("fleet_total", fleet_seconds, io::ExecCounters(),
               {{"fleet", static_cast<uint64_t>(fleet)},
                {"jobs", stats.jobs},
                {"resident_pages", resident_pages},
                {"total_pages", total_pages},
                {"stalls", fleet_stalls},
                {"prefetch_hits", fleet_hits}},
               {{"measured_exec_seconds", measured_exec},
                {"predicted_exec_seconds", predicted},
                {"residual_seconds", predicted - measured_exec},
                {"spill_read_bytes_per_sec",
                 calibrated.spill_read_bytes_per_sec},
                {"overlap_efficiency", calibrated.overlap_efficiency},
                {"local_cpu_seconds_per_byte",
                 calibrated.local_cpu_seconds_per_byte}});

  const la::Vector& sim_weights = sim.value().model.weights;
  const la::Vector& fleet_weights = run.value().model.weights;
  const bool identical =
      sim_weights.size() == fleet_weights.size() &&
      std::memcmp(sim_weights.data(), fleet_weights.data(),
                  sim_weights.size() * sizeof(double)) == 0;
  const bool model_ran = !calibration.ok() || predicted > 0;

  std::printf(
      "\nfleet weights bitwise identical to the simulator: %s\n"
      "fleet: %llu prefetch hits, %llu stalls across %zu jobs\n"
      "residency after fleet run: %llu/%llu pages\n"
      "calibrated model: measured exec %.3fs vs predicted %.3fs "
      "(mean residual %+.3fs/job)\n"
      "fleet wall %.3fs vs simulator wall %.3fs\n",
      identical ? "yes" : "NO — determinism regression",
      static_cast<unsigned long long>(fleet_hits),
      static_cast<unsigned long long>(fleet_stalls), stats.jobs,
      static_cast<unsigned long long>(resident_pages),
      static_cast<unsigned long long>(total_pages), measured_exec, predicted,
      (predicted - measured_exec) / per_job, fleet_seconds, sim_seconds);

  const util::Status json = reporter.Write(dir);
  if (!json.ok()) {
    std::fprintf(stderr, "bench JSON not written: %s\n",
                 json.ToString().c_str());
  }
  M3_IGNORE_STATUS(io::RemoveFile(path), "best-effort scratch cleanup");
  return identical && model_ran && json.ok() ? 0 : 1;
}

}  // namespace
}  // namespace m3::bench

int main(int argc, char** argv) { return m3::bench::Run(argc, argv); }
