// Table 1: "M3 introduces minimal changes to code originally using
// in-memory data structure" — and, implicitly, negligible overhead when
// the data is resident.
//
// This harness quantifies the implicit claim: the same logistic-regression
// and k-means workloads run on (a) a heap-owned Matrix, (b) a warm
// memory-mapped view, and (c) a cold memory-mapped view (page cache
// dropped first). (a) vs (b) isolates the pure mmap overhead — the paper's
// "treated identically" — while (c) shows the first-touch cost that the OS
// amortizes via readahead.

#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "core/m3.h"
#include "la/blas.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace m3::bench {
namespace {

int Run(int argc, char** argv) {
  int64_t size_mb = 48;
  int64_t repeats = 3;
  std::string dir = "/tmp";
  bool csv = false;
  std::string trace;
  util::FlagParser flags("Table 1: in-memory vs memory-mapped overhead");
  flags.AddInt64("size_mb", &size_mb, "dataset size in MiB");
  flags.AddInt64("repeats", &repeats, "timing repetitions (min is kept)");
  flags.AddString("dir", &dir, "scratch directory");
  flags.AddBool("csv", &csv, "emit CSV");
  flags.AddString("trace", &trace,
                  "write a Chrome trace-event JSON of the run to this path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    return UsageError(flags, argv[0], st.ToString());
  }
  if (flags.help_requested()) {
    return 0;
  }
  if (!ValidateBenchFlags(flags, argv[0], {{"size_mb", size_mb}, {"repeats", repeats}},
                          {}, &trace)) {
    return 1;
  }

  PrintPreamble("Table 1: adopting M3 — code delta and runtime overhead");
  TraceSession trace_session(trace);
  std::printf(
      "\ncode delta (from the paper):\n"
      "  original: Mat data(rows, cols);\n"
      "  M3:       double* m = mmapAlloc(file, rows * cols);\n"
      "            Mat data(m, rows, cols);\n\n");

  const std::string path = dir + "/m3_table1.m3";
  const uint64_t images = ImagesForMb(static_cast<uint64_t>(size_mb));
  if (auto st = EnsureDataset(path, images); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto dataset = MappedDataset::Open(path).ValueOrDie();
  const size_t rows = dataset.rows();
  const size_t cols = dataset.cols();

  // Heap copy: the "Original" side of Table 1.
  la::Matrix heap(rows, cols);
  std::memcpy(heap.data(), dataset.features().data(),
              rows * cols * sizeof(double));
  std::vector<double> labels = dataset.CopyLabels();
  la::ConstVectorView y(labels.data(), labels.size());

  ml::LogisticRegressionOptions lr_options;
  lr_options.lbfgs = PaperLbfgsOptions();
  lr_options.lbfgs.max_iterations = 3;  // enough passes to time reliably

  ml::KMeansOptions km_options = PaperKMeansOptions();
  km_options.max_iterations = 3;

  auto time_lr = [&](la::ConstMatrixView x) {
    double best = 1e300;
    for (int64_t r = 0; r < repeats; ++r) {
      util::Stopwatch watch;
      auto model = ml::LogisticRegression(lr_options).Train(x, y);
      if (!model.ok()) {
        std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
        std::exit(1);
      }
      best = std::min(best, watch.ElapsedSeconds());
    }
    return best;
  };
  auto time_km = [&](la::ConstMatrixView x) {
    double best = 1e300;
    for (int64_t r = 0; r < repeats; ++r) {
      util::Stopwatch watch;
      auto result = ml::KMeans(km_options).Cluster(x);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        std::exit(1);
      }
      best = std::min(best, watch.ElapsedSeconds());
    }
    return best;
  };

  // Warm the mapping once so (b) measures steady state.
  dataset.mapping().TouchAllPages();
  const double lr_heap = time_lr(heap);
  const double lr_warm = time_lr(dataset.features());
  const double km_heap = time_km(heap);
  const double km_warm = time_km(dataset.features());

  // Cold: evict before a single-shot run (eviction may be a no-op on
  // sandboxed kernels; the preamble documents capabilities).
  M3_IGNORE_STATUS(dataset.EvictAll(), "best-effort cold-start evict");
  util::Stopwatch watch;
  auto cold_model =
      ml::LogisticRegression(lr_options).Train(dataset.features(), y);
  const double lr_cold = watch.ElapsedSeconds();
  if (!cold_model.ok()) {
    std::fprintf(stderr, "%s\n", cold_model.status().ToString().c_str());
    return 1;
  }

  util::TablePrinter table({"workload", "heap_s", "mmap_warm_s",
                            "warm_overhead", "mmap_cold_s"});
  table.AddRow({"logistic regression (3 it)",
                util::StrFormat("%.3f", lr_heap),
                util::StrFormat("%.3f", lr_warm),
                util::StrFormat("%.2fx", lr_warm / lr_heap),
                util::StrFormat("%.3f", lr_cold)});
  table.AddRow({"k-means (3 it)", util::StrFormat("%.3f", km_heap),
                util::StrFormat("%.3f", km_warm),
                util::StrFormat("%.2fx", km_warm / km_heap), "-"});
  table.Print(stdout, csv);
  std::printf("\nexpectation: warm_overhead ~ 1.0x — mapped data is "
              "\"treated identically\" (paper §2).\n");

  M3_IGNORE_STATUS(io::RemoveFile(path), "best-effort scratch cleanup");
  return 0;
}

}  // namespace
}  // namespace m3::bench

int main(int argc, char** argv) { return m3::bench::Run(argc, argv); }
