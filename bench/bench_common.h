#ifndef M3_BENCH_BENCH_COMMON_H_
#define M3_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "core/m3.h"
#include "data/dataset.h"
#include "data/infimnist.h"
#include "exec/pipeline_stats.h"
#include "io/disk_probe.h"
#include "io/file.h"
#include "io/io_stats.h"
#include "io/platform.h"
#include "obs/trace_session.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/json.h"
#include "util/stopwatch.h"
#include "util/sys_info.h"

namespace m3::bench {

/// \brief Prints the standard bench preamble (host + platform caps).
inline void PrintPreamble(const char* title) {
  std::printf("=== %s ===\n", title);
  std::printf("host: %s\n", util::SysInfoString().c_str());
  std::printf("platform: %s\n",
              io::GetPlatformCapabilities().ToString().c_str());
}

/// \brief Prints `message` plus the full usage text to stderr and returns
/// the nonzero exit code, so a bench main can `return UsageError(...)` on a
/// malformed command line instead of running a half-configured sweep.
inline int UsageError(const util::FlagParser& flags, const char* argv0,
                      const std::string& message) {
  std::fprintf(stderr, "error: %s\n\n%s", message.c_str(),
               flags.Usage(argv0).c_str());
  return 1;
}

/// \brief Post-Parse() validation every bench main runs.
///
/// The value parsers already reject non-numeric text ("--workers=abc");
/// this enforces the invariants they cannot see:
///   - each (name, value) in `positive` parsed to > 0 — a zero-MiB
///     dataset or zero-iteration sweep would "succeed" while measuring
///     nothing,
///   - each (name, value) in `non_negative` parsed to >= 0,
///   - an explicitly passed --trace has a non-empty path (`--trace=`
///     would silently run untraced and CI would miss the artifact).
/// On violation prints the offending flag plus usage and returns false;
/// the caller exits nonzero.
inline bool ValidateBenchFlags(
    const util::FlagParser& flags, const char* argv0,
    std::initializer_list<std::pair<const char*, int64_t>> positive,
    std::initializer_list<std::pair<const char*, int64_t>> non_negative = {},
    const std::string* trace = nullptr) {
  for (const auto& [name, value] : positive) {
    if (value <= 0) {
      UsageError(flags, argv0,
                 util::StrFormat("--%s must be positive (got %lld)", name,
                                 static_cast<long long>(value)));
      return false;
    }
  }
  for (const auto& [name, value] : non_negative) {
    if (value < 0) {
      UsageError(flags, argv0,
                 util::StrFormat("--%s must be >= 0 (got %lld)", name,
                                 static_cast<long long>(value)));
      return false;
    }
  }
  if (trace != nullptr && flags.was_set("trace") && trace->empty()) {
    UsageError(flags, argv0, "--trace needs a non-empty path");
    return false;
  }
  return true;
}

/// \brief Generates (or reuses) a binary-label InfiMNIST-style dataset of
/// `images` images at `path`; prints progress.
inline util::Status EnsureDataset(const std::string& path, uint64_t images,
                                  bool binary_labels = true,
                                  uint64_t seed = 2016) {
  const uint64_t want_bytes =
      data::kImageFeatures * sizeof(double) * images;
  if (io::FileExists(path)) {
    auto meta = data::ReadDatasetMeta(path);
    if (meta.ok() && meta.value().rows == images &&
        meta.value().FeatureBytes() == want_bytes) {
      std::printf("reusing dataset %s (%s)\n", path.c_str(),
                  util::HumanBytes(want_bytes).c_str());
      return util::Status::OK();
    }
  }
  std::printf("generating %llu images (%s) -> %s\n",
              static_cast<unsigned long long>(images),
              util::HumanBytes(want_bytes).c_str(), path.c_str());
  util::Stopwatch watch;
  M3_RETURN_IF_ERROR(
      data::GenerateInfimnistDataset(path, images, seed, binary_labels));
  std::printf("  generated in %s\n",
              util::HumanDuration(watch.ElapsedSeconds()).c_str());
  return util::Status::OK();
}

/// \brief Number of images whose dense double matrix occupies `mb` MiB.
inline uint64_t ImagesForMb(uint64_t mb) {
  return (mb << 20) / (data::kImageFeatures * sizeof(double));
}

/// \brief Prints the process-wide execution-engine counters (prefetch,
/// evict, pipeline-stall) accumulated since start / the last reset.
inline void PrintExecCounters() {
  std::printf("exec: %s\n", io::GlobalExecCounters().ToString().c_str());
}

/// \brief Machine-readable bench output: one BENCH_<name>.json per bench.
///
/// Every measured configuration is recorded with its wall seconds and the
/// ExecCounters delta it produced, then written as a single JSON document
/// so CI can track the perf trajectory across PRs without scraping tables:
///
///   {"bench": "sgd_overlap", "cases": [
///     {"name": "pipelined", "seconds": 1.234,
///      "exec": {"passes": 3, ..., "prefetch_hits": 40, "stalls": 2}}]}
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Records one measured configuration. Case names are escaped, so any
  /// string is safe; `extra` appends bench-specific integer fields and
  /// `extra_doubles` real-valued ones (fit residuals, calibrated
  /// constants) to the case object. A non-finite `seconds` or extra
  /// double poisons the reporter: Write() refuses to emit an unparseable
  /// file and returns the error instead.
  ///
  /// Both overloads render the "exec" object through
  /// exec::PipelineStats::ToJson() — the one serialization of pipeline
  /// stats. The ExecCounters overload lifts the counters into a stats
  /// value first (per-stage seconds and duration percentiles read as 0);
  /// benches that hold a real pipeline should pass its stats() so the
  /// stall/compute percentiles land in the JSON.
  void Add(const std::string& case_name, double seconds,
           const io::ExecCounters& exec,
           const std::vector<std::pair<std::string, uint64_t>>& extra = {},
           const std::vector<std::pair<std::string, double>>& extra_doubles =
               {}) {
    Add(case_name, seconds, exec::PipelineStats::FromCounters(exec), extra,
        extra_doubles);
  }

  void Add(const std::string& case_name, double seconds,
           const exec::PipelineStats& stats,
           const std::vector<std::pair<std::string, uint64_t>>& extra = {},
           const std::vector<std::pair<std::string, double>>& extra_doubles =
               {}) {
    auto number = util::JsonNumber(seconds);
    if (!number.ok()) {
      if (first_error_.ok()) {
        first_error_ =
            number.status().WithContext("case '" + case_name + "'");
      }
      return;
    }
    std::string body = util::StrFormat(
        "{\"name\": \"%s\", \"seconds\": %s, \"exec\": %s",
        util::JsonEscape(case_name).c_str(), number.value().c_str(),
        stats.ToJson().c_str());
    for (const auto& [key, value] : extra) {
      body += util::StrFormat(", \"%s\": %llu",
                              util::JsonEscape(key).c_str(),
                              static_cast<unsigned long long>(value));
    }
    for (const auto& [key, value] : extra_doubles) {
      auto rendered = util::JsonNumber(value);
      if (!rendered.ok()) {
        if (first_error_.ok()) {
          first_error_ = rendered.status().WithContext(
              "case '" + case_name + "' field '" + key + "'");
        }
        return;
      }
      body += util::StrFormat(", \"%s\": %s",
                              util::JsonEscape(key).c_str(),
                              rendered.value().c_str());
    }
    body += "}";
    cases_.push_back(std::move(body));
  }

  /// Writes BENCH_<bench_name>.json under `dir` and prints the path.
  /// Fails without writing if any recorded case was invalid.
  util::Status Write(const std::string& dir = ".") {
    M3_RETURN_IF_ERROR(first_error_);
    std::string body =
        util::StrFormat("{\"bench\": \"%s\", \"cases\": [",
                        util::JsonEscape(bench_name_).c_str());
    for (size_t i = 0; i < cases_.size(); ++i) {
      if (i > 0) {
        body += ", ";
      }
      body += cases_[i];
    }
    body += "]}\n";
    const std::string path = dir + "/BENCH_" + bench_name_ + ".json";
    M3_RETURN_IF_ERROR(io::WriteStringToFile(path, body));
    std::printf("wrote %s\n", path.c_str());
    return util::Status::OK();
  }

 private:
  std::string bench_name_;
  std::vector<std::string> cases_;  ///< rendered JSON objects, add order
  util::Status first_error_ = util::Status::OK();
};

/// \brief RAII wrapper for a bench's --trace flag: starts the global
/// trace session when `path` is non-empty, writes the trace on scope
/// exit. Construct it before the measured work; an empty path makes it a
/// complete no-op.
class TraceSession {
 public:
  explicit TraceSession(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) {
      obs::StartGlobalTrace(path_);
    }
  }

  ~TraceSession() {
    if (path_.empty()) {
      return;
    }
    const util::Status status = obs::StopGlobalTraceAndWrite();
    if (status.ok()) {
      std::printf("wrote trace %s\n", path_.c_str());
    } else {
      std::printf("trace write failed: %s\n", status.ToString().c_str());
    }
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  std::string path_;
};

/// \brief Probes the disk under `dir` once and prints the result.
inline io::DiskProbeResult ProbeAndPrint(const std::string& dir,
                                         uint64_t probe_bytes = 64ull << 20) {
  auto probe = io::ProbeDisk(dir, probe_bytes);
  if (!probe.ok()) {
    std::printf("disk probe failed (%s); assuming 1 GB/s\n",
                probe.status().ToString().c_str());
    io::DiskProbeResult fallback;
    fallback.sequential_read_bytes_per_sec = 1e9;
    fallback.sequential_write_bytes_per_sec = 1e9;
    fallback.random_read_latency_sec = 1e-4;
    return fallback;
  }
  std::printf("disk: seq read %s/s, seq write %s/s, rand 4K %.0f us\n",
              util::HumanBytes(static_cast<uint64_t>(
                                   probe.value().sequential_read_bytes_per_sec))
                  .c_str(),
              util::HumanBytes(
                  static_cast<uint64_t>(
                      probe.value().sequential_write_bytes_per_sec))
                  .c_str(),
              probe.value().random_read_latency_sec * 1e6);
  return probe.value();
}

}  // namespace m3::bench

#endif  // M3_BENCH_BENCH_COMMON_H_
