// Ablation: sensitivity of the chunked training scan to chunk size, and of
// the parallel kernels to worker count. DESIGN.md calls out chunk size as
// the knob coupling the RAM-budget emulator's eviction granularity to scan
// throughput; this bench shows the flat region where the default (~8 MiB)
// sits.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/m3.h"
#include "la/blas.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace m3::bench {
namespace {

int Run(int argc, char** argv) {
  int64_t size_mb = 48;
  std::string dir = "/tmp";
  bool csv = false;
  std::string trace;
  util::FlagParser flags("Chunk-size and thread-count ablation");
  flags.AddInt64("size_mb", &size_mb, "dataset size in MiB");
  flags.AddString("dir", &dir, "scratch directory");
  flags.AddBool("csv", &csv, "emit CSV");
  flags.AddString("trace", &trace,
                  "write a Chrome trace-event JSON of the run to this path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    return UsageError(flags, argv[0], st.ToString());
  }
  if (flags.help_requested()) {
    return 0;
  }
  if (!ValidateBenchFlags(flags, argv[0], {{"size_mb", size_mb}},
                          {}, &trace)) {
    return 1;
  }

  PrintPreamble("Chunk size & thread count ablation");
  TraceSession trace_session(trace);
  const std::string path = dir + "/m3_chunks.m3";
  if (auto st =
          EnsureDataset(path, ImagesForMb(static_cast<uint64_t>(size_mb)));
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto dataset = MappedDataset::Open(path).ValueOrDie();
  dataset.mapping().TouchAllPages();
  la::ConstMatrixView x = dataset.features();
  la::ConstVectorView y = dataset.labels();

  // --- Chunk-size sweep: one gradient pass per configuration. -------------
  std::printf("\n-- gradient-pass time vs chunk_rows (default auto ~ %zu) "
              "--\n",
              ml::AutoChunkRows(x.cols(), 0));
  util::TablePrinter chunk_table({"chunk_rows", "chunk_mib", "pass_s"});
  for (size_t chunk_rows : {64ul, 256ul, 1024ul, 4096ul, 16384ul, 65536ul}) {
    ml::LogisticRegressionObjective objective(x, y, 0.0, chunk_rows);
    la::Vector w(objective.Dimension());
    la::Vector grad(objective.Dimension());
    // Warm-up + 3 timed passes, keep the minimum.
    objective.EvaluateWithGradient(w, grad);
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      util::Stopwatch watch;
      objective.EvaluateWithGradient(w, grad);
      best = std::min(best, watch.ElapsedSeconds());
    }
    chunk_table.AddRow(
        {util::StrFormat("%zu", chunk_rows),
         util::StrFormat("%.1f", static_cast<double>(chunk_rows * x.cols() *
                                                     sizeof(double)) /
                                     (1 << 20)),
         util::StrFormat("%.3f", best)});
  }
  chunk_table.Print(stdout, csv);

  // --- Thread sweep on the parallel kernels. -------------------------------
  std::printf("\n-- ParallelGemv speedup vs worker count --\n");
  la::Vector vec(x.cols(), 0.5);
  la::Vector out(x.rows());
  util::TablePrinter thread_table({"threads", "gemv_s", "speedup"});
  double base = 0;
  for (size_t threads : {1ul, 2ul, 4ul}) {
    util::ThreadPool pool(threads);
    // Warm-up + best of 3.
    la::ParallelGemv(1.0, x, vec, 0.0, out, &pool);
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      util::Stopwatch watch;
      la::ParallelGemv(1.0, x, vec, 0.0, out, &pool);
      best = std::min(best, watch.ElapsedSeconds());
    }
    if (threads == 1) {
      base = best;
    }
    thread_table.AddRow({util::StrFormat("%zu", threads),
                         util::StrFormat("%.4f", best),
                         util::StrFormat("%.2fx", base / best)});
  }
  thread_table.Print(stdout, csv);
  std::printf("(machine has %zu logical cpus)\n", util::NumCpus());

  M3_IGNORE_STATUS(io::RemoveFile(path), "best-effort scratch cleanup");
  return 0;
}

}  // namespace
}  // namespace m3::bench

int main(int argc, char** argv) { return m3::bench::Run(argc, argv); }
