// Dense-equivalent vs CSR logistic-regression passes under a constrained
// RAM budget. Both sides scan the same logical matrix: the sparse file
// stores only the nonzeros (col_idx + values behind a row_ptr index); the
// dense twin is its densified copy. At the same budget percentage the CSR
// scan touches a small fraction of the dense bytes per pass — the M3
// story applied to sparse features: mmap the compact format and let the
// byte-range pipeline (CsrByteMap) prefetch/evict exactly the section
// spans a chunk needs.
//
// Before any timing, a conformance gate trains nothing but evaluates one
// loss+gradient on both representations chunked identically: the results
// must agree to the last bit (sparse kernels are the dense kernels minus
// the zero terms, in the same order). A mismatch exits nonzero — this
// bench doubles as the nightly's sparse/dense drift tripwire.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_common.h"
#include "core/m3.h"
#include "core/sparse_mapped_dataset.h"
#include "data/sparse_dataset.h"
#include "io/io_stats.h"
#include "io/prefetch_backend.h"
#include "la/sparse.h"
#include "ml/sparse_logistic_regression.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace m3::bench {
namespace {

struct PassResult {
  double seconds = 0;
  io::ExecCounters exec;
  io::ResourceSample usage;
  bool trained = false;
};

int Run(int argc, char** argv) {
  int64_t rows = 40000;
  int64_t cols = 256;
  int64_t nnz_per_row = 16;
  int64_t budget_percent = 25;
  int64_t iterations = 6;
  int64_t readahead = 4;
  int64_t workers = 2;
  std::string dir = "/tmp";
  std::string backend = "madvise";
  std::string trace;
  bool csv = false;
  util::FlagParser flags(
      "dense-equivalent vs CSR out-of-core logistic-regression passes");
  flags.AddInt64("rows", &rows, "dataset rows");
  flags.AddInt64("cols", &cols, "dataset columns (dense width)");
  flags.AddInt64("nnz_per_row", &nnz_per_row,
                 "mean stored nonzeros per row (raggedness is 2x this)");
  flags.AddInt64("budget_percent", &budget_percent,
                 "RAM budget as percent of each format's scan bytes");
  flags.AddInt64("iterations", &iterations, "L-BFGS iterations per config");
  flags.AddInt64("readahead", &readahead, "engine readahead chunks");
  flags.AddInt64("workers", &workers, "engine workers");
  flags.AddString("dir", &dir, "scratch directory");
  flags.AddString("backend", &backend,
                  "prefetch backend: madvise|pread|uring|auto");
  flags.AddString("trace", &trace,
                  "write a Chrome trace-event JSON of the run to this path");
  flags.AddBool("csv", &csv, "emit CSV");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    return UsageError(flags, argv[0], st.ToString());
  }
  if (flags.help_requested()) {
    return 0;
  }
  if (!ValidateBenchFlags(flags, argv[0],
                          {{"rows", rows},
                           {"cols", cols},
                           {"nnz_per_row", nnz_per_row},
                           {"budget_percent", budget_percent},
                           {"iterations", iterations},
                           {"readahead", readahead}},
                          {{"workers", workers}}, &trace)) {
    return 1;
  }
  auto backend_kind = io::ParsePrefetchBackendKind(backend);
  if (!backend_kind.ok()) {
    return UsageError(flags, argv[0], backend_kind.status().ToString());
  }

  PrintPreamble("sparse overlap: dense-equivalent vs CSR at a RAM budget");
  TraceSession trace_session(trace);

  const std::string sparse_path = dir + "/m3_sparse_overlap.m3s";
  const std::string dense_path = dir + "/m3_sparse_overlap_dense.m3";
  data::SparseSyntheticOptions gen;
  gen.rows = static_cast<uint64_t>(rows);
  gen.cols = static_cast<uint64_t>(cols);
  gen.nnz_per_row = static_cast<uint64_t>(nnz_per_row);
  gen.seed = 2016;
  if (auto st = data::GenerateSparseDataset(sparse_path, gen); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  uint64_t sparse_scan_bytes = 0;
  uint64_t dense_scan_bytes = 0;
  std::vector<double> labels;
  {
    // Densify once to write the dense twin, then drop the copy.
    auto sparse = MappedSparseDataset::Open(sparse_path).ValueOrDie();
    sparse_scan_bytes = sparse.payload_bytes();
    dense_scan_bytes = sparse.rows() * sparse.cols() * sizeof(double);
    labels = sparse.CopyLabels();
    const la::Matrix dense = la::Densify(sparse.csr());
    if (auto st = data::WriteDataset(dense_path, dense.View(), labels,
                                     sparse.num_classes());
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("scan bytes per pass: dense %s, CSR %s (%.1fx smaller)\n\n",
              util::HumanBytes(dense_scan_bytes).c_str(),
              util::HumanBytes(sparse_scan_bytes).c_str(),
              static_cast<double>(dense_scan_bytes) /
                  static_cast<double>(std::max<uint64_t>(1,
                                                         sparse_scan_bytes)));

  // -------------------------------------------------------------------
  // Conformance gate: one loss+gradient, both formats, uniform chunks.
  // -------------------------------------------------------------------
  bool gate_passed = false;
  {
    auto sparse = MappedSparseDataset::Open(sparse_path).ValueOrDie();
    auto dense = MappedDataset::Open(dense_path).ValueOrDie();
    const la::ConstVectorView y(labels.data(), labels.size());
    const size_t chunk_rows = 4096;
    ml::LogisticRegressionObjective dense_obj(dense.features(), y, 1e-4,
                                              chunk_rows);
    ml::SparseLogisticRegressionObjective sparse_obj(sparse.csr(), y, 1e-4,
                                                     chunk_rows);
    la::Vector w(dense_obj.Dimension());
    for (size_t i = 0; i < w.size(); ++i) {
      w[i] = 0.01 * static_cast<double>(i % 13) - 0.06;
    }
    la::Vector dense_grad(dense_obj.Dimension());
    la::Vector sparse_grad(sparse_obj.Dimension());
    const double dense_loss = dense_obj.EvaluateWithGradient(w, dense_grad);
    const double sparse_loss = sparse_obj.EvaluateWithGradient(w, sparse_grad);
    gate_passed =
        std::memcmp(&dense_loss, &sparse_loss, sizeof(double)) == 0 &&
        std::memcmp(dense_grad.data(), sparse_grad.data(),
                    dense_grad.size() * sizeof(double)) == 0;
    std::printf("conformance gate (loss+gradient, uniform chunks): %s\n\n",
                gate_passed ? "bitwise identical" : "MISMATCH");
    if (!gate_passed) {
      std::fprintf(stderr,
                   "GRADIENT MISMATCH: sparse objective drifted from its "
                   "dense twin (loss %.17g vs %.17g)\n",
                   sparse_loss, dense_loss);
    }
  }

  // -------------------------------------------------------------------
  // Timed passes: each format at budget_percent of its own scan bytes.
  // -------------------------------------------------------------------
  auto run_dense = [&]() {
    M3Options options;
    options.ram_budget_bytes =
        dense_scan_bytes * static_cast<uint64_t>(budget_percent) / 100;
    options.readahead_chunks = static_cast<uint64_t>(readahead);
    options.pipeline_workers = static_cast<uint64_t>(workers);
    options.prefetch_backend = backend_kind.value();
    options.trace_path = trace;
    auto dataset = MappedDataset::Open(dense_path, options).ValueOrDie();
    M3_IGNORE_STATUS(dataset.EvictAll(), "best-effort cold-start evict");
    ml::LogisticRegressionOptions train_options;
    train_options.lbfgs = PaperLbfgsOptions();
    train_options.lbfgs.max_iterations = static_cast<size_t>(iterations);
    PassResult result;
    const io::ExecCounters exec_before = io::GlobalExecCounters();
    const io::ResourceSample before = io::ResourceSample::Now();
    util::Stopwatch watch;
    auto model = TrainLogisticRegression(dataset, train_options);
    result.seconds = watch.ElapsedSeconds();
    result.usage = io::ResourceSample::Now() - before;
    result.exec = io::GlobalExecCounters() - exec_before;
    result.trained = model.ok();
    if (!model.ok()) {
      std::fprintf(stderr, "dense training failed: %s\n",
                   model.status().ToString().c_str());
    }
    return result;
  };

  auto run_sparse = [&]() {
    M3Options options;
    options.ram_budget_bytes =
        sparse_scan_bytes * static_cast<uint64_t>(budget_percent) / 100;
    options.readahead_chunks = static_cast<uint64_t>(readahead);
    options.pipeline_workers = static_cast<uint64_t>(workers);
    options.prefetch_backend = backend_kind.value();
    options.trace_path = trace;
    auto dataset = MappedSparseDataset::Open(sparse_path, options)
                       .ValueOrDie();
    M3_IGNORE_STATUS(dataset.EvictAll(), "best-effort cold-start evict");
    ml::SparseLogisticRegressionOptions train_options;
    train_options.lbfgs = PaperLbfgsOptions();
    train_options.lbfgs.max_iterations = static_cast<size_t>(iterations);
    train_options.chunk_nnz_bytes = dataset.ChunkNnzBytes();
    train_options.pipeline = &dataset.pipeline();
    PassResult result;
    const io::ExecCounters exec_before = io::GlobalExecCounters();
    const io::ResourceSample before = io::ResourceSample::Now();
    util::Stopwatch watch;
    auto model = ml::SparseLogisticRegression(train_options)
                     .Train(dataset.csr(),
                            la::ConstVectorView(labels.data(), labels.size()));
    result.seconds = watch.ElapsedSeconds();
    result.usage = io::ResourceSample::Now() - before;
    result.exec = io::GlobalExecCounters() - exec_before;
    result.trained = model.ok();
    if (!model.ok()) {
      std::fprintf(stderr, "sparse training failed: %s\n",
                   model.status().ToString().c_str());
    }
    return result;
  };

  const PassResult dense = run_dense();
  const PassResult sparse = run_sparse();

  util::TablePrinter table({"config", "epochs_s", "scan_bytes_per_pass",
                            "read", "prefetches", "stalls", "evicted"});
  auto add_row = [&](const std::string& name, const PassResult& r,
                     uint64_t scan_bytes) {
    table.AddRow({name, util::StrFormat("%.3f", r.seconds),
                  util::HumanBytes(scan_bytes),
                  util::HumanBytes(r.usage.io.read_bytes),
                  util::StrFormat("%llu", static_cast<unsigned long long>(
                                              r.exec.prefetches)),
                  util::StrFormat("%llu", static_cast<unsigned long long>(
                                              r.exec.stalls)),
                  util::HumanBytes(r.exec.bytes_evicted)});
  };
  add_row("dense_equivalent", dense, dense_scan_bytes);
  add_row("csr", sparse, sparse_scan_bytes);
  table.Print(stdout, csv);
  PrintExecCounters();

  JsonReporter reporter("sparse_overlap");
  reporter.Add("dense_equivalent", dense.seconds, dense.exec,
               {{"scan_bytes_per_pass", dense_scan_bytes}});
  reporter.Add("csr", sparse.seconds, sparse.exec,
               {{"scan_bytes_per_pass", sparse_scan_bytes},
                {"gradient_bitwise_identical", gate_passed ? 1u : 0u}});
  if (util::Status json = reporter.Write(dir); !json.ok()) {
    std::fprintf(stderr, "bench JSON not written: %s\n",
                 json.ToString().c_str());
  }

  if (dense.seconds > 0 && sparse.trained && dense.trained) {
    std::printf("\nCSR pass is %.1fx the dense-equivalent wall-clock at the "
                "same budget percentage (scanning %.1fx fewer bytes)\n",
                sparse.seconds / dense.seconds,
                static_cast<double>(dense_scan_bytes) /
                    static_cast<double>(
                        std::max<uint64_t>(1, sparse_scan_bytes)));
  }
  M3_IGNORE_STATUS(io::RemoveFile(sparse_path), "best-effort scratch cleanup");
  M3_IGNORE_STATUS(io::RemoveFile(dense_path), "best-effort scratch cleanup");
  return (gate_passed && dense.trained && sparse.trained) ? 0 : 1;
}

}  // namespace
}  // namespace m3::bench

int main(int argc, char** argv) { return m3::bench::Run(argc, argv); }
