// §4 future work: "develop mathematical models and systematic approaches
// to profile and predict algorithm performance".
//
// Validates the measurement-calibrated PerfModel: train at the smallest
// size with the execution engine, fit every model parameter from the
// measured exec::PipelineStats (core/model_fit::FitFromStats — CPU cost,
// disk bandwidth, overlap efficiency), then predict the measured engine
// drive time of the remaining sizes and report the residuals. The fitted
// parameters and per-size residuals land in BENCH_perf_model.json; the
// run exits nonzero when the worst relative residual exceeds
// --max_residual, which is what lets the nightly job catch silent
// model/engine drift.
//
// Also prints the model's out-of-core knee for this machine's measured
// disk bandwidth (the analytic Fig. 1a).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/m3.h"
#include "core/model_fit.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace m3::bench {
namespace {

int Run(int argc, char** argv) {
  std::string sizes_csv = "8,16,32,64";
  int64_t iterations = 5;
  std::string dir = "/tmp";
  bool csv = false;
  double max_residual = 0.75;
  std::string trace;
  util::FlagParser flags(
      "PerfModel calibration from measured PipelineStats: fitted "
      "parameters, predicted vs measured drive time, residual gate");
  flags.AddString("sizes_mb", &sizes_csv,
                  "comma-separated sizes in MiB (first = calibration "
                  "workload)");
  flags.AddInt64("iterations", &iterations, "L-BFGS iterations");
  flags.AddString("dir", &dir, "scratch directory (JSON lands here too)");
  flags.AddBool("csv", &csv, "emit CSV");
  flags.AddString("trace", &trace,
                  "write a Chrome trace-event JSON of the run to this path");
  flags.AddDouble("max_residual", &max_residual,
                  "fail (exit 1) when the worst relative residual "
                  "exceeds this fraction");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    return UsageError(flags, argv[0], st.ToString());
  }
  if (flags.help_requested()) {
    return 0;
  }
  if (!ValidateBenchFlags(flags, argv[0], {{"iterations", iterations}},
                          {}, &trace)) {
    return 1;
  }
  if (max_residual <= 0) {
    return UsageError(flags, argv[0], "--max_residual must be positive");
  }

  PrintPreamble("Performance model calibration (measured PipelineStats)");
  TraceSession trace_session(trace);
  const io::DiskProbeResult disk = ProbeAndPrint(dir, 32ull << 20);

  std::vector<uint64_t> sizes_mb;
  for (const auto& token : util::StrSplit(sizes_csv, ',')) {
    auto parsed = util::ParseInt64(token);
    if (!parsed.ok() || parsed.value() <= 0) {
      std::fprintf(stderr, "bad size '%s'\n", token.c_str());
      return 1;
    }
    sizes_mb.push_back(static_cast<uint64_t>(parsed.value()));
  }

  ml::LogisticRegressionOptions options;
  options.lbfgs = PaperLbfgsOptions();
  options.lbfgs.max_iterations = static_cast<size_t>(iterations);

  // Measure warm, in-RAM engine runs: every training pass is driven by
  // the dataset's ChunkPipeline, so the per-stage seconds the fit needs
  // accumulate in its PipelineStats. Warm isolates the CPU term — on a
  // cold run stalled chunks serve page faults inside the compute functor.
  struct Measurement {
    uint64_t size_mb = 0;
    uint64_t bytes = 0;
    exec::PipelineStats stats;
    io::ExecCounters exec;
  };
  std::vector<Measurement> measured;
  const std::string path = dir + "/m3_perfmodel.m3";
  for (uint64_t size_mb : sizes_mb) {
    if (auto st = EnsureDataset(path, ImagesForMb(size_mb)); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    auto dataset = MappedDataset::Open(path).ValueOrDie();
    dataset.mapping().TouchAllPages();  // warm: isolate the CPU term
    const io::ExecCounters before = io::GlobalExecCounters();
    ml::OptimizationResult stats;
    auto model = TrainLogisticRegression(dataset, options, &stats);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    Measurement m;
    m.size_mb = size_mb;
    m.bytes = dataset.feature_bytes();
    m.stats = dataset.pipeline().ConsumeStats();
    m.exec = io::GlobalExecCounters() - before;
    measured.push_back(m);
  }
  M3_IGNORE_STATUS(io::RemoveFile(path), "best-effort scratch cleanup");

  // Calibrate on the smallest size only; predict the rest.
  FitOptions fit_options;
  fit_options.fallback_disk_bytes_per_sec =
      disk.sequential_read_bytes_per_sec;
  fit_options.ram_bytes = util::TotalRamBytes();
  fit_options.fit_pass_overhead = true;
  auto fit = FitFromStats(
      measured[0].stats,
      measured[0].stats.passes * measured[0].bytes, fit_options);
  if (!fit.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 fit.status().ToString().c_str());
    return 1;
  }
  const ModelFitResult& calibration = fit.value();
  const PerfModel model(calibration.params);
  std::printf("calibrated: %s\n", calibration.ToString().c_str());

  JsonReporter reporter("perf_model");
  reporter.Add(
      "fit", calibration.measured_seconds, measured[0].exec, {},
      {{"cpu_seconds_per_byte", calibration.params.cpu_seconds_per_byte},
       {"disk_read_bytes_per_sec",
        calibration.params.disk_read_bytes_per_sec},
       {"overlap_efficiency", calibration.params.overlap_efficiency},
       {"pass_overhead_seconds",
        calibration.params.pass_overhead_seconds},
       {"overlap_raw", calibration.overlap_raw},
       {"stall_byte_fraction", calibration.stall_byte_fraction},
       {"self_residual_seconds", calibration.residual_seconds},
       {"self_relative_residual", calibration.relative_residual}});

  // Predicted vs measured engine drive time per size. Warm in-RAM runs:
  // the model charges the CPU term plus per-pass overhead (no misses).
  util::TablePrinter table(
      {"size_mib", "passes", "measured_s", "predicted_s", "residual"});
  double worst_residual = 0;
  for (const Measurement& m : measured) {
    const double measured_seconds = m.stats.drive_seconds;
    const double predicted =
        model.PredictPass(m.bytes).seconds *
        static_cast<double>(m.stats.passes);
    const double residual =
        std::fabs(predicted - measured_seconds) / measured_seconds;
    worst_residual = std::max(worst_residual, residual);
    table.AddRow(
        {util::StrFormat("%llu",
                         static_cast<unsigned long long>(m.size_mb)),
         util::StrFormat("%llu",
                         static_cast<unsigned long long>(m.stats.passes)),
         util::StrFormat("%.3f", measured_seconds),
         util::StrFormat("%.3f", predicted),
         util::StrFormat("%.0f%%", residual * 100)});
    reporter.Add(util::StrFormat(
                     "size_%llu_mb",
                     static_cast<unsigned long long>(m.size_mb)),
                 measured_seconds, m.exec, {},
                 {{"predicted_seconds", predicted},
                  {"residual_seconds", predicted - measured_seconds},
                  {"relative_residual", residual}});
  }
  table.Print(stdout, csv);
  std::printf(
      "worst relative residual: %.0f%% (gate: %.0f%%) — calibrated on "
      "the %llu MiB workload, extrapolated to the rest\n",
      worst_residual * 100, max_residual * 100,
      static_cast<unsigned long long>(measured[0].size_mb));

  // Analytic knee for this machine, under the fitted parameters.
  std::printf("\n-- analytic Fig. 1a for THIS machine (RAM %s, fitted "
              "model) --\n",
              util::HumanBytes(calibration.params.ram_bytes).c_str());
  std::vector<uint64_t> sweep_sizes;
  for (uint64_t fraction = 1; fraction <= 16; fraction *= 2) {
    sweep_sizes.push_back(calibration.params.ram_bytes / 8 * fraction);
  }
  util::TablePrinter knee({"size", "predicted_s", "regime", "cpu_util"});
  for (const SweepPoint& p :
       PredictSweep(model, sweep_sizes, measured[0].stats.passes)) {
    knee.AddRow({util::HumanBytes(p.dataset_bytes),
                 util::StrFormat("%.1f", p.predicted_seconds),
                 p.out_of_core ? "out-of-core" : "in-RAM",
                 util::StrFormat("%.0f%%", p.cpu_utilization * 100)});
  }
  knee.Print(stdout, csv);

  const util::Status json = reporter.Write(dir);
  if (!json.ok()) {
    std::fprintf(stderr, "bench JSON not written: %s\n",
                 json.ToString().c_str());
  }
  if (worst_residual > max_residual) {
    std::fprintf(stderr,
                 "FAIL: residual %.0f%% exceeds --max_residual %.0f%% — "
                 "the calibrated model no longer predicts the engine\n",
                 worst_residual * 100, max_residual * 100);
    return 1;
  }
  return json.ok() ? 0 : 1;
}

}  // namespace
}  // namespace m3::bench

int main(int argc, char** argv) { return m3::bench::Run(argc, argv); }
