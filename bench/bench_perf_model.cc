// §4 future work: "develop mathematical models and systematic approaches
// to profile and predict algorithm performance".
//
// Validates the PerfModel: calibrate the CPU constant from the smallest
// measured run, then predict the remaining sizes and report the error.
// Also prints the model's out-of-core knee for this machine's measured
// disk bandwidth (the analytic Fig. 1a).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/m3.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace m3::bench {
namespace {

int Run(int argc, char** argv) {
  std::string sizes_csv = "8,16,32,64";
  int64_t iterations = 5;
  std::string dir = "/tmp";
  bool csv = false;
  util::FlagParser flags("PerfModel validation: predicted vs measured");
  flags.AddString("sizes_mb", &sizes_csv, "comma-separated sizes in MiB");
  flags.AddInt64("iterations", &iterations, "L-BFGS iterations");
  flags.AddString("dir", &dir, "scratch directory");
  flags.AddBool("csv", &csv, "emit CSV");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    return 0;
  }

  PrintPreamble("Performance model validation");
  const io::DiskProbeResult disk = ProbeAndPrint(dir, 32ull << 20);

  std::vector<uint64_t> sizes_mb;
  for (const auto& token : util::StrSplit(sizes_csv, ',')) {
    auto parsed = util::ParseInt64(token);
    if (!parsed.ok() || parsed.value() <= 0) {
      std::fprintf(stderr, "bad size '%s'\n", token.c_str());
      return 1;
    }
    sizes_mb.push_back(static_cast<uint64_t>(parsed.value()));
  }

  ml::LogisticRegressionOptions options;
  options.lbfgs = PaperLbfgsOptions();
  options.lbfgs.max_iterations = static_cast<size_t>(iterations);

  // Measure (warm, in-RAM: the CPU side of the model).
  struct Measurement {
    uint64_t size_mb;
    double seconds;
    size_t passes;
  };
  std::vector<Measurement> measured;
  const std::string path = dir + "/m3_perfmodel.m3";
  for (uint64_t size_mb : sizes_mb) {
    if (auto st = EnsureDataset(path, ImagesForMb(size_mb)); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    auto dataset = MappedDataset::Open(path).ValueOrDie();
    dataset.mapping().TouchAllPages();  // warm: isolate the CPU term
    ml::OptimizationResult stats;
    util::Stopwatch watch;
    auto model = TrainLogisticRegression(dataset, options, &stats);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    measured.push_back(
        {size_mb, watch.ElapsedSeconds(), stats.function_evaluations});
  }
  (void)io::RemoveFile(path);

  // Calibrate on the smallest size only; predict the rest.
  PerfModelParams params;
  params.cpu_seconds_per_byte = PerfModel::FitCpuSecondsPerByte(
      measured[0].seconds, measured[0].size_mb << 20, measured[0].passes);
  params.disk_read_bytes_per_sec = disk.sequential_read_bytes_per_sec;
  params.ram_bytes = util::TotalRamBytes();
  PerfModel model(params);
  std::printf("calibrated: %s\n", model.ToString().c_str());

  util::TablePrinter table(
      {"size_mib", "measured_s", "predicted_s", "error"});
  double worst_error = 0;
  for (const Measurement& m : measured) {
    // Warm runs: predict with the steady-state pass only (no cold pass).
    const double predicted =
        model.PredictPass(m.size_mb << 20).cpu_seconds *
        static_cast<double>(m.passes);
    const double error = std::fabs(predicted - m.seconds) / m.seconds;
    worst_error = std::max(worst_error, error);
    table.AddRow({util::StrFormat("%llu",
                                  static_cast<unsigned long long>(m.size_mb)),
                  util::StrFormat("%.3f", m.seconds),
                  util::StrFormat("%.3f", predicted),
                  util::StrFormat("%.0f%%", error * 100)});
  }
  table.Print(stdout, csv);
  std::printf("worst extrapolation error: %.0f%% (model is a two-term "
              "max(cpu, io) approximation)\n",
              worst_error * 100);

  // Analytic knee for this machine.
  std::printf("\n-- analytic Fig. 1a for THIS machine (RAM %s, measured "
              "disk) --\n",
              util::HumanBytes(params.ram_bytes).c_str());
  std::vector<uint64_t> sweep_sizes;
  for (uint64_t fraction = 1; fraction <= 16; fraction *= 2) {
    sweep_sizes.push_back(params.ram_bytes / 8 * fraction);
  }
  util::TablePrinter knee({"size", "predicted_s", "regime", "cpu_util"});
  for (const SweepPoint& p :
       PredictSweep(model, sweep_sizes, measured[0].passes)) {
    knee.AddRow({util::HumanBytes(p.dataset_bytes),
                 util::StrFormat("%.1f", p.predicted_seconds),
                 p.out_of_core ? "out-of-core" : "in-RAM",
                 util::StrFormat("%.0f%%", p.cpu_utilization * 100)});
  }
  knee.Print(stdout, csv);
  return 0;
}

}  // namespace
}  // namespace m3::bench

int main(int argc, char** argv) { return m3::bench::Run(argc, argv); }
