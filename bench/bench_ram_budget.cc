// Ablation: runtime as the emulated RAM budget shrinks relative to the
// dataset — the Fig. 1a mechanism viewed from the other axis. A fixed
// dataset is trained under budgets from 2x the data (no eviction at all)
// down to 1/8th (evicting almost everything each pass).

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/m3.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace m3::bench {
namespace {

int Run(int argc, char** argv) {
  int64_t size_mb = 48;
  int64_t iterations = 5;
  std::string dir = "/tmp";
  bool csv = false;
  std::string trace;
  util::FlagParser flags("RAM-budget sweep over a fixed dataset");
  flags.AddInt64("size_mb", &size_mb, "dataset size in MiB");
  flags.AddInt64("iterations", &iterations, "L-BFGS iterations");
  flags.AddString("dir", &dir, "scratch directory");
  flags.AddBool("csv", &csv, "emit CSV");
  flags.AddString("trace", &trace,
                  "write a Chrome trace-event JSON of the run to this path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    return UsageError(flags, argv[0], st.ToString());
  }
  if (flags.help_requested()) {
    return 0;
  }
  if (!ValidateBenchFlags(flags, argv[0], {{"size_mb", size_mb}, {"iterations", iterations}},
                          {}, &trace)) {
    return 1;
  }

  PrintPreamble("RAM-budget sweep (Fig. 1a mechanism, other axis)");
  TraceSession trace_session(trace);
  const std::string path = dir + "/m3_budget_sweep.m3";
  if (auto st =
          EnsureDataset(path, ImagesForMb(static_cast<uint64_t>(size_mb)));
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  ml::LogisticRegressionOptions train_options;
  train_options.lbfgs = PaperLbfgsOptions();
  train_options.lbfgs.max_iterations = static_cast<size_t>(iterations);

  const uint64_t data_bytes = static_cast<uint64_t>(size_mb) << 20;
  util::TablePrinter table({"budget", "budget/data", "runtime_s",
                            "evicted_per_pass", "slowdown"});
  double baseline = 0;
  // 0 = unlimited, then 2x, 1x, 1/2, 1/4, 1/8 of the dataset.
  const double fractions[] = {0.0, 2.0, 1.0, 0.5, 0.25, 0.125};
  for (double fraction : fractions) {
    M3Options options;
    options.ram_budget_bytes =
        fraction == 0.0
            ? 0
            : static_cast<uint64_t>(fraction *
                                    static_cast<double>(data_bytes));
    auto dataset = MappedDataset::Open(path, options).ValueOrDie();
    M3_IGNORE_STATUS(dataset.EvictAll(), "best-effort cold-start evict");
    util::Stopwatch watch;
    ml::OptimizationResult stats;
    auto model = TrainLogisticRegression(dataset, train_options, &stats);
    const double seconds = watch.ElapsedSeconds();
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    if (baseline == 0) {
      baseline = seconds;
    }
    uint64_t evicted_per_pass = 0;
    if (auto* budget = dataset.ram_budget();
        budget != nullptr && budget->passes() > 0) {
      evicted_per_pass = budget->bytes_evicted() / budget->passes();
    }
    table.AddRow(
        {fraction == 0.0 ? "unlimited"
                         : util::HumanBytes(options.ram_budget_bytes),
         fraction == 0.0 ? "-" : util::StrFormat("%.3f", fraction),
         util::StrFormat("%.3f", seconds),
         util::HumanBytes(evicted_per_pass),
         util::StrFormat("%.2fx", seconds / baseline)});
  }
  table.Print(stdout, csv);
  PrintExecCounters();
  std::printf("\nexpectation: runtime is flat while budget >= data (zero "
              "eviction), then grows as the budget shrinks — the emulated "
              "version of crossing the paper's 32 GB boundary.\n");
  M3_IGNORE_STATUS(io::RemoveFile(path), "best-effort scratch cleanup");
  return 0;
}

}  // namespace
}  // namespace m3::bench

int main(int argc, char** argv) { return m3::bench::Run(argc, argv); }
