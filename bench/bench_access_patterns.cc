// §4 future work: "extensively study the memory access patterns and
// locality of algorithms (e.g., sequential scans vs random access)".
//
// Sweeps access pattern x madvise policy over a mapped dataset, reporting
// effective scan bandwidth and the AccessPatternTracer's locality metrics.
// Patterns:
//   sequential  — the full-pass scan all batch trainers use
//   chunked     — SGD's shuffled-batch order (sequential inside batches)
//   strided     — every k-th row (subsampling pass)
//   random      — uniform row gather (worst case for readahead)

#include <cstdio>
#include <numeric>

#include "bench/bench_common.h"
#include "core/m3.h"
#include "la/blas.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace m3::bench {
namespace {

/// Sums one row (forces the page in; cheap enough to expose I/O).
double ConsumeRow(la::ConstMatrixView x, size_t row) {
  return la::Sum(x.Row(row));
}

int Run(int argc, char** argv) {
  int64_t size_mb = 48;
  int64_t stride = 16;
  std::string dir = "/tmp";
  bool csv = false;
  std::string trace;
  util::FlagParser flags("Access-pattern x madvise-policy sweep");
  flags.AddInt64("size_mb", &size_mb, "dataset size in MiB");
  flags.AddInt64("stride", &stride, "row stride for the strided pattern");
  flags.AddString("dir", &dir, "scratch directory");
  flags.AddBool("csv", &csv, "emit CSV");
  flags.AddString("trace", &trace,
                  "write a Chrome trace-event JSON of the run to this path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    return UsageError(flags, argv[0], st.ToString());
  }
  if (flags.help_requested()) {
    return 0;
  }
  if (!ValidateBenchFlags(flags, argv[0], {{"size_mb", size_mb}, {"stride", stride}},
                          {}, &trace)) {
    return 1;
  }

  PrintPreamble("Access patterns x madvise policies");
  TraceSession trace_session(trace);
  const std::string path = dir + "/m3_patterns.m3";
  const uint64_t images = ImagesForMb(static_cast<uint64_t>(size_mb));
  if (auto st = EnsureDataset(path, images); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  struct Pattern {
    const char* name;
    std::vector<size_t> order;
  };
  auto dataset_probe = MappedDataset::Open(path).ValueOrDie();
  const size_t rows = dataset_probe.rows();
  const uint64_t row_bytes = dataset_probe.cols() * sizeof(double);

  std::vector<Pattern> patterns;
  {
    Pattern sequential{"sequential", {}};
    sequential.order.resize(rows);
    std::iota(sequential.order.begin(), sequential.order.end(), 0);
    patterns.push_back(std::move(sequential));

    Pattern chunked{"chunked(sgd)", {}};
    const size_t batch = 256;
    const size_t num_batches = (rows + batch - 1) / batch;
    std::vector<size_t> batches(num_batches);
    std::iota(batches.begin(), batches.end(), 0);
    util::Rng shuffle_rng(5);
    shuffle_rng.Shuffle(&batches);
    for (size_t b : batches) {
      for (size_t r = b * batch; r < std::min(rows, (b + 1) * batch); ++r) {
        chunked.order.push_back(r);
      }
    }
    patterns.push_back(std::move(chunked));

    Pattern strided{"strided", {}};
    for (size_t phase = 0; phase < static_cast<size_t>(stride); ++phase) {
      for (size_t r = phase; r < rows; r += stride) {
        strided.order.push_back(r);
      }
    }
    patterns.push_back(std::move(strided));

    Pattern random{"random", {}};
    util::Rng rng(11);
    random.order = rng.Permutation(rows);
    patterns.push_back(std::move(random));
  }

  util::TablePrinter table({"pattern", "advice", "seconds", "MiB_s",
                            "sequential_frac", "page_locality"});
  double sink = 0;
  for (const Pattern& pattern : patterns) {
    // Full (unsampled) trace: sampling would alias consecutive accesses
    // into artificial strides and break the locality metrics.
    AccessPatternTracer tracer(row_bytes, /*sample_period=*/1);
    for (size_t row : pattern.order) {
      tracer.Record(row);
    }
    const AccessPatternSummary summary = tracer.Summarize();
    for (io::Advice advice : {io::Advice::kNormal, io::Advice::kSequential,
                              io::Advice::kRandom, io::Advice::kWillNeed}) {
      auto dataset = MappedDataset::Open(path).ValueOrDie();
      // cold start per cell
      M3_IGNORE_STATUS(dataset.EvictAll(), "best-effort cold-start evict");
      M3_IGNORE_STATUS(dataset.Advise(advice), "advisory madvise");
      la::ConstMatrixView x = dataset.features();
      util::Stopwatch watch;
      for (size_t row : pattern.order) {
        sink += ConsumeRow(x, row);
      }
      const double seconds = watch.ElapsedSeconds();
      const double mib =
          static_cast<double>(rows) * static_cast<double>(row_bytes) /
          (1 << 20);
      table.AddRow({pattern.name, std::string(io::AdviceToString(advice)),
                    util::StrFormat("%.3f", seconds),
                    util::StrFormat("%.0f", mib / seconds),
                    util::StrFormat("%.2f", summary.sequential_fraction),
                    util::StrFormat("%.2f", summary.page_locality)});
    }
  }
  table.Print(stdout, csv);
  std::printf("(sink=%g)\n", sink);
  std::printf("\nexpectation: sequential/chunked sustain the highest "
              "bandwidth; random is pathological unless the kernel is told "
              "MADV_RANDOM; this is why M3 favors sequential-scan "
              "algorithms (§4).\n");
  if (!io::GetPlatformCapabilities().mincore_tracks_eviction) {
    std::printf("NOTE: this kernel ignores page eviction, so every cell ran "
                "warm from cache and the sweep reflects CPU-side pattern "
                "cost only; on a stock Linux kernel the cold-cache spread "
                "appears.\n");
  }
  M3_IGNORE_STATUS(io::RemoveFile(path), "best-effort scratch cleanup");
  return 0;
}

}  // namespace
}  // namespace m3::bench

int main(int argc, char** argv) { return m3::bench::Run(argc, argv); }
