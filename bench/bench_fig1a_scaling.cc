// Figure 1a: "M3 runtime scales linearly with data size, when data fits in
// or exceeds RAM" — logistic regression, 10 iterations of L-BFGS.
//
// Two views are produced:
//   1. MEASURED at laptop scale: a sweep of dataset sizes trained under an
//      emulated RAM budget (madvise/fadvise eviction behind the scan).
//      The paper's 32 GB boundary becomes --budget_mb.
//   2. PROJECTED at paper scale: the PerfModel calibrated from the
//      measured in-budget runs and the probed disk bandwidth, evaluated at
//      10..190 GB with 32 GB RAM (the paper's x-axis).
//
// Success criterion (EXPERIMENTS.md): both segments linear; slope break at
// the budget; out-of-core slope steeper; low CPU utilization out-of-core.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/m3.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace m3::bench {
namespace {

struct MeasuredPoint {
  uint64_t size_mb = 0;
  double seconds = 0;
  double cpu_utilization = 0;
  uint64_t passes = 0;
  uint64_t evicted_bytes = 0;
  bool out_of_core = false;
};

int Run(int argc, char** argv) {
  std::string sizes_csv = "16,32,48,64,80,96";
  int64_t budget_mb = 48;
  int64_t iterations = 10;
  std::string dir = "/tmp";
  bool csv = false;
  std::string trace;
  util::FlagParser flags(
      "Fig. 1a: L-BFGS logistic regression runtime vs dataset size");
  flags.AddString("sizes_mb", &sizes_csv, "comma-separated sizes in MiB");
  flags.AddInt64("budget_mb", &budget_mb, "emulated RAM budget (MiB)");
  flags.AddInt64("iterations", &iterations, "L-BFGS iterations");
  flags.AddString("dir", &dir, "scratch directory");
  flags.AddBool("csv", &csv, "emit CSV instead of aligned tables");
  flags.AddString("trace", &trace,
                  "write a Chrome trace-event JSON of the run to this path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    return UsageError(flags, argv[0], st.ToString());
  }
  if (flags.help_requested()) {
    return 0;
  }
  if (!ValidateBenchFlags(flags, argv[0], {{"budget_mb", budget_mb}, {"iterations", iterations}},
                          {}, &trace)) {
    return 1;
  }

  PrintPreamble("Figure 1a: runtime vs dataset size (L-BFGS LR)");
  TraceSession trace_session(trace);
  const io::DiskProbeResult disk = ProbeAndPrint(dir, 32ull << 20);

  std::vector<uint64_t> sizes_mb;
  for (const auto& token : util::StrSplit(sizes_csv, ',')) {
    auto parsed = util::ParseInt64(token);
    if (!parsed.ok() || parsed.value() <= 0) {
      std::fprintf(stderr, "bad size '%s'\n", token.c_str());
      return 1;
    }
    sizes_mb.push_back(static_cast<uint64_t>(parsed.value()));
  }

  ml::LogisticRegressionOptions train_options;
  train_options.lbfgs = PaperLbfgsOptions();
  train_options.lbfgs.max_iterations = static_cast<size_t>(iterations);

  std::vector<MeasuredPoint> points;
  const std::string path = dir + "/m3_fig1a.m3";
  for (uint64_t size_mb : sizes_mb) {
    const uint64_t images = ImagesForMb(size_mb);
    if (auto st = EnsureDataset(path, images); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    M3Options options;
    options.ram_budget_bytes = static_cast<uint64_t>(budget_mb) << 20;
    auto dataset = MappedDataset::Open(path, options);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    // cold cache, like the paper
    M3_IGNORE_STATUS(dataset.value().EvictAll(),
                     "best-effort cold-start evict");

    io::ResourceSample before = io::ResourceSample::Now();
    util::Stopwatch watch;
    ml::OptimizationResult stats;
    auto model =
        TrainLogisticRegression(dataset.value(), train_options, &stats);
    const double seconds = watch.ElapsedSeconds();
    io::ResourceSample delta = io::ResourceSample::Now() - before;
    if (!model.ok()) {
      std::fprintf(stderr, "train: %s\n", model.status().ToString().c_str());
      return 1;
    }
    MeasuredPoint point;
    point.size_mb = size_mb;
    point.seconds = seconds;
    point.cpu_utilization = delta.CpuUtilization(util::NumCpus());
    point.passes = stats.function_evaluations;
    point.out_of_core =
        (size_mb << 20) > static_cast<uint64_t>(budget_mb) << 20;
    if (auto* budget = dataset.value().ram_budget(); budget != nullptr) {
      point.evicted_bytes = budget->bytes_evicted();
    }
    points.push_back(point);
    std::printf("  %4llu MiB: %8.2fs  (%llu passes, cpu %.0f%%, %s)\n",
                static_cast<unsigned long long>(size_mb), seconds,
                static_cast<unsigned long long>(point.passes),
                point.cpu_utilization * 100,
                point.out_of_core ? "out-of-core" : "in-budget");
  }
  M3_IGNORE_STATUS(io::RemoveFile(path), "best-effort scratch cleanup");

  // ---- Measured table -----------------------------------------------------
  std::printf("\n-- measured (budget = %lld MiB) --\n",
              static_cast<long long>(budget_mb));
  util::TablePrinter table({"size_mib", "runtime_s", "s_per_mib", "passes",
                            "cpu_util", "evicted", "regime"});
  for (const MeasuredPoint& p : points) {
    table.AddRow({util::StrFormat("%llu",
                                  static_cast<unsigned long long>(p.size_mb)),
                  util::StrFormat("%.3f", p.seconds),
                  util::StrFormat("%.4f",
                                  p.seconds / static_cast<double>(p.size_mb)),
                  util::StrFormat("%llu",
                                  static_cast<unsigned long long>(p.passes)),
                  util::StrFormat("%.0f%%", p.cpu_utilization * 100),
                  util::HumanBytes(p.evicted_bytes),
                  p.out_of_core ? "out-of-core" : "in-budget"});
  }
  table.Print(stdout, csv);

  // Linearity check within each regime (paper: both segments linear).
  auto slope = [&](bool out_of_core) -> double {
    const MeasuredPoint* first = nullptr;
    const MeasuredPoint* last = nullptr;
    for (const MeasuredPoint& p : points) {
      if (p.out_of_core == out_of_core) {
        if (first == nullptr) {
          first = &p;
        }
        last = &p;
      }
    }
    if (first == nullptr || last == first) {
      return 0.0;
    }
    return (last->seconds - first->seconds) /
           static_cast<double>(last->size_mb - first->size_mb);
  };
  const double in_slope = slope(false);
  const double out_slope = slope(true);
  std::printf("\nslopes: in-budget %.4f s/MiB, out-of-core %.4f s/MiB "
              "(ratio %.2fx; paper expects > 1 out-of-core)\n",
              in_slope, out_slope,
              in_slope > 0 ? out_slope / in_slope : 0.0);

  // ---- Paper-scale projection --------------------------------------------
  // Calibrate CPU cost from the largest in-budget run (warm steady state).
  double cpu_seconds_per_byte = 0;
  for (const MeasuredPoint& p : points) {
    if (!p.out_of_core) {
      cpu_seconds_per_byte = PerfModel::FitCpuSecondsPerByte(
          p.seconds, p.size_mb << 20, p.passes);
    }
  }
  if (cpu_seconds_per_byte == 0 && !points.empty()) {
    cpu_seconds_per_byte = PerfModel::FitCpuSecondsPerByte(
        points[0].seconds, points[0].size_mb << 20, points[0].passes);
  }
  PerfModelParams params;
  params.cpu_seconds_per_byte = cpu_seconds_per_byte;
  params.disk_read_bytes_per_sec = 1e9;  // the paper's RevoDrive 350
  params.ram_bytes = 32ull << 30;        // the paper's machine
  PerfModel model(params);
  std::printf("\n-- projected to the paper's machine (32 GB RAM, 1 GB/s "
              "SSD; cpu fit %.3g s/B; local disk measured %s/s) --\n",
              cpu_seconds_per_byte,
              util::HumanBytes(static_cast<uint64_t>(
                                   disk.sequential_read_bytes_per_sec))
                  .c_str());
  std::vector<uint64_t> paper_sizes;
  for (uint64_t gb : {10ull, 40ull, 70ull, 100ull, 130ull, 160ull, 190ull}) {
    paper_sizes.push_back(gb << 30);
  }
  // The paper plots 10 iterations of L-BFGS; use the measured pass count
  // per iteration from the laptop runs for a like-for-like projection.
  const size_t passes =
      points.empty() ? 10 : static_cast<size_t>(points.back().passes);
  util::TablePrinter projection(
      {"size_gb", "predicted_s", "regime", "pred_cpu_util"});
  for (const SweepPoint& p : PredictSweep(model, paper_sizes, passes)) {
    projection.AddRow(
        {util::StrFormat("%llu", static_cast<unsigned long long>(
                                     p.dataset_bytes >> 30)),
         util::StrFormat("%.0f", p.predicted_seconds),
         p.out_of_core ? "out-of-core" : "in-RAM",
         util::StrFormat("%.0f%%", p.cpu_utilization * 100)});
  }
  projection.Print(stdout, csv);
  std::printf("(paper Fig. 1a anchors: ~10G in-RAM near the origin; 190G "
              "out-of-core ~2000s with ~13%% CPU)\n");
  return 0;
}

}  // namespace
}  // namespace m3::bench

int main(int argc, char** argv) { return m3::bench::Run(argc, argv); }
