// google-benchmark micro-kernels: the la primitives on heap memory vs a
// warm memory mapping. Quantifies the per-kernel side of Table 1's
// "treated identically" claim at nanosecond resolution.

#ifndef M3_NO_GOOGLE_BENCHMARK

#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <memory>
#include <numeric>
#include <string>

#include "bench/bench_common.h"
#include "io/file.h"
#include "io/mmap_file.h"
#include "la/blas.h"
#include "la/matrix.h"
#include "util/random.h"

namespace m3 {
namespace {

constexpr size_t kCols = 784;  // one InfiMNIST-style image row

/// Shared fixture state: a heap matrix and an identical warm mapping.
struct Backings {
  la::Matrix heap;
  io::MemoryMappedFile mapped;
  std::string path;

  explicit Backings(size_t rows)
      : heap(rows, kCols),
        path("/tmp/m3_bench_kernels_" + std::to_string(rows) + ".bin") {
    util::Rng rng(42);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < kCols; ++c) {
        heap(r, c) = rng.Uniform(0, 255);
      }
    }
    auto created = io::MemoryMappedFile::CreateAndMap(
        path, rows * kCols * sizeof(double));
    mapped = std::move(created).ValueOrDie();
    std::memcpy(mapped.mutable_data(), heap.data(),
                rows * kCols * sizeof(double));
    mapped.TouchAllPages();  // warm
    // Unlink immediately: the mapping stays valid and /tmp stays clean
    // even though the benchmark registry never destroys the fixture.
    M3_IGNORE_STATUS(io::RemoveFile(path), "best-effort scratch cleanup");
  }

  la::ConstMatrixView HeapView() const { return heap.View(); }
  la::ConstMatrixView MappedView() const {
    return la::ConstMatrixView(mapped.As<const double>(), heap.rows(), kCols);
  }
};

Backings& SharedBackings(size_t rows) {
  static auto* cache = new std::map<size_t, std::unique_ptr<Backings>>();
  auto it = cache->find(rows);
  if (it == cache->end()) {
    it = cache->emplace(rows, std::make_unique<Backings>(rows)).first;
  }
  return *it->second;
}

void BM_Dot(benchmark::State& state) {
  la::Vector a(static_cast<size_t>(state.range(0)), 1.5);
  la::Vector b(static_cast<size_t>(state.range(0)), 2.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::Dot(a, b));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 16);
}
BENCHMARK(BM_Dot)->Arg(784)->Arg(1 << 14);

void BM_Axpy(benchmark::State& state) {
  la::Vector x(static_cast<size_t>(state.range(0)), 1.5);
  la::Vector y(static_cast<size_t>(state.range(0)), 0.0);
  for (auto _ : state) {
    la::Axpy(0.5, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 24);
}
BENCHMARK(BM_Axpy)->Arg(784)->Arg(1 << 14);

template <bool kMapped>
void BM_GemvBacking(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Backings& backings = SharedBackings(rows);
  la::ConstMatrixView x =
      kMapped ? backings.MappedView() : backings.HeapView();
  la::Vector v(kCols, 0.5);
  la::Vector out(rows);
  for (auto _ : state) {
    la::Gemv(1.0, x, v, 0.0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * rows * kCols * 8);
}
BENCHMARK_TEMPLATE(BM_GemvBacking, false)  // heap
    ->Arg(1024)
    ->Arg(8192)
    ->Name("BM_Gemv_heap");
BENCHMARK_TEMPLATE(BM_GemvBacking, true)  // mmap (warm)
    ->Arg(1024)
    ->Arg(8192)
    ->Name("BM_Gemv_mmap_warm");

template <bool kMapped>
void BM_RowScanBacking(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Backings& backings = SharedBackings(rows);
  la::ConstMatrixView x =
      kMapped ? backings.MappedView() : backings.HeapView();
  for (auto _ : state) {
    double sum = 0;
    for (size_t r = 0; r < rows; ++r) {
      sum += la::Sum(x.Row(r));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * rows * kCols * 8);
}
BENCHMARK_TEMPLATE(BM_RowScanBacking, false)
    ->Arg(8192)
    ->Name("BM_RowScan_heap");
BENCHMARK_TEMPLATE(BM_RowScanBacking, true)
    ->Arg(8192)
    ->Name("BM_RowScan_mmap_warm");

void BM_ParallelGemv(benchmark::State& state) {
  const size_t rows = 8192;
  Backings& backings = SharedBackings(rows);
  la::Vector v(kCols, 0.5);
  la::Vector out(rows);
  for (auto _ : state) {
    la::ParallelGemv(1.0, backings.HeapView(), v, 0.0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * rows * kCols * 8);
}
BENCHMARK(BM_ParallelGemv);

void BM_GemvT(benchmark::State& state) {
  const size_t rows = 8192;
  Backings& backings = SharedBackings(rows);
  la::Vector v(rows, 0.5);
  la::Vector out(kCols);
  for (auto _ : state) {
    la::GemvT(1.0, backings.HeapView(), v, 0.0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * rows * kCols * 8);
}
BENCHMARK(BM_GemvT);

void BM_SquaredDistance(benchmark::State& state) {
  la::Vector a(kCols, 1.0);
  la::Vector b(kCols, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::SquaredDistance(a, b));
  }
}
BENCHMARK(BM_SquaredDistance);

}  // namespace
}  // namespace m3

// Custom main instead of BENCHMARK_MAIN(): --trace=FILE is extracted
// before benchmark::Initialize sees argv, because google-benchmark
// rejects flags it does not recognize. The kernels themselves carry no
// span sites, so the trace holds the residency/RSS counter tracks the
// sampler emits while the kernels run.
int main(int argc, char** argv) {
  std::string trace;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace = argv[i] + 8;
      if (trace.empty()) {
        std::fprintf(stderr, "error: --trace needs a non-empty path\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc || argv[i + 1][0] == '\0') {
        std::fprintf(stderr, "error: --trace needs a non-empty path\n");
        return 1;
      }
      trace = argv[++i];
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  m3::bench::TraceSession trace_session(trace);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

#else  // M3_NO_GOOGLE_BENCHMARK

#include <cstdio>

// The CMake fallback for hosts without google-benchmark: keep the target
// buildable so `make` stays green; the kernels simply do not run.
int main() {
  std::printf("bench_kernels: built without google-benchmark; skipping\n");
  return 0;
}

#endif  // M3_NO_GOOGLE_BENCHMARK
