// Figure 1b: "M3's speed (one PC) comparable to 8-instance Spark, and
// significantly faster than 4-instance Spark" for logistic regression
// (10 L-BFGS iterations) and k-means (10 iterations, 5 clusters).
//
// Paper numbers:            L-BFGS LR      k-means
//   M3 (one PC)               1950 s        1164 s
//   Spark x 8 instances       2864 s (1.47x) 1604 s (1.38x)
//   Spark x 4 instances       8256 s (4.23x) 3491 s (3.00x)
//
// We cannot rent the 2016 EC2 fleet, so (per DESIGN.md §3) the cluster is
// simulated: real distributed math, modeled time. Two tables come out:
//   1. LAPTOP SCALE: measured M3 wall time vs simulated Spark seconds on
//      the same (small) dataset with the cost model calibrated from the
//      measured M3 run. Fixed Spark overheads dominate at this scale —
//      which is itself a finding the paper alludes to ("using more Spark
//      instances ... may also incur additional overhead").
//   2. PAPER SCALE: the same calibrated model evaluated at 190 GB with the
//      paper's hardware parameters on both sides (M3: 32 GB RAM + 1 GB/s
//      SSD via PerfModel; Spark: m3.2xlarge fleets). The published ratios
//      should re-emerge here.

#include <cstdio>

#include "bench/bench_common.h"
#include "cluster/partition.h"
#include "cluster/sim_clock.h"
#include "cluster/spark_cluster.h"
#include "core/m3.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace m3::bench {
namespace {

cluster::ClusterConfig PaperInstanceConfig(size_t instances,
                                           double cpu_seconds_per_byte) {
  cluster::ClusterConfig config;  // defaults model m3.2xlarge
  config.num_instances = instances;
  config.local_cpu_seconds_per_byte = cpu_seconds_per_byte;
  return config;
}

int Run(int argc, char** argv) {
  int64_t size_mb = 64;
  std::string dir = "/tmp";
  bool csv = false;
  std::string trace;
  util::FlagParser flags(
      "Fig. 1b: M3 (one machine) vs simulated 4/8-instance Spark");
  flags.AddInt64("size_mb", &size_mb, "dataset size in MiB (laptop scale)");
  flags.AddString("dir", &dir, "scratch directory");
  flags.AddBool("csv", &csv, "emit CSV instead of aligned tables");
  flags.AddString("trace", &trace,
                  "write a Chrome trace-event JSON of the run to this path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    return UsageError(flags, argv[0], st.ToString());
  }
  if (flags.help_requested()) {
    return 0;
  }
  if (!ValidateBenchFlags(flags, argv[0], {{"size_mb", size_mb}},
                          {}, &trace)) {
    return 1;
  }

  PrintPreamble("Figure 1b: M3 vs Spark (4 and 8 instances)");
  TraceSession trace_session(trace);

  const std::string path = dir + "/m3_fig1b.m3";
  const uint64_t images = ImagesForMb(static_cast<uint64_t>(size_mb));
  if (auto st = EnsureDataset(path, images); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto dataset = MappedDataset::Open(path).ValueOrDie();
  const uint64_t dataset_bytes = dataset.feature_bytes();

  // ---- M3 measured: LR ----------------------------------------------------
  ml::LogisticRegressionOptions lr_options;
  lr_options.lbfgs = PaperLbfgsOptions();
  ml::OptimizationResult lr_stats;
  util::Stopwatch watch;
  auto lr_model = TrainLogisticRegression(dataset, lr_options, &lr_stats);
  const double m3_lr_seconds = watch.ElapsedSeconds();
  if (!lr_model.ok()) {
    std::fprintf(stderr, "%s\n", lr_model.status().ToString().c_str());
    return 1;
  }
  // Calibrate the shared compute scale from this run (compute-bound,
  // warm). The wall-clock fit reflects all local cores working; multiply
  // by the core count to get the per-core constant the simulator charges
  // per task slot.
  const double cpu_seconds_per_byte =
      PerfModel::FitCpuSecondsPerByte(m3_lr_seconds, dataset_bytes,
                                      lr_stats.function_evaluations) *
      static_cast<double>(util::NumCpus());

  // ---- M3 measured: k-means ----------------------------------------------
  ml::KMeansOptions km_options = PaperKMeansOptions();
  km_options.seed = 42;
  watch.Restart();
  auto km_result = TrainKMeans(dataset, km_options);
  const double m3_km_seconds = watch.ElapsedSeconds();
  if (!km_result.ok()) {
    std::fprintf(stderr, "%s\n", km_result.status().ToString().c_str());
    return 1;
  }
  const double km_cpu_seconds_per_byte =
      PerfModel::FitCpuSecondsPerByte(m3_km_seconds, dataset_bytes,
                                      km_result.value().iterations) *
      static_cast<double>(util::NumCpus());

  // ---- Simulated Spark on the same data (laptop scale) --------------------
  // Instance RAM scaled so the dataset sits between 4- and 8-instance
  // aggregate cache capacity, reproducing the paper's 190 GB vs 120/240 GB
  // regime at this size.
  auto scaled_config = [&](size_t instances, double cpu_cost) {
    cluster::ClusterConfig config = PaperInstanceConfig(instances, cpu_cost);
    // Preserve the paper's instance-RAM : dataset ratio (30 GB : 190 GB),
    // so 4 instances spill and 8 instances cache, like Fig. 1b.
    config.instance_ram_bytes = static_cast<uint64_t>(
        static_cast<double>(dataset_bytes) * (30.0 / 190.0));
    return config;
  };

  la::ConstMatrixView x = dataset.features();
  la::ConstVectorView y = dataset.labels();

  auto spark_lr = [&](size_t instances) {
    cluster::SparkCluster spark(
        scaled_config(instances, cpu_seconds_per_byte));
    return spark
        .RunLogisticRegression(x, y, lr_options.l2, lr_options.lbfgs)
        .ValueOrDie();
  };
  auto spark_km = [&](size_t instances) {
    cluster::SparkCluster spark(
        scaled_config(instances, km_cpu_seconds_per_byte));
    ml::KMeansOptions options = km_options;
    return spark.RunKMeans(x, options).ValueOrDie();
  };

  auto lr4 = spark_lr(4);
  auto lr8 = spark_lr(8);
  auto km4 = spark_km(4);
  auto km8 = spark_km(8);

  std::printf("\n-- laptop scale (%s dataset; measured M3, simulated "
              "Spark) --\n",
              util::HumanBytes(dataset_bytes).c_str());
  util::TablePrinter laptop({"algorithm", "system", "runtime_s",
                             "vs_M3", "paper_vs_M3"});
  auto add = [&](const char* algo, const char* system, double seconds,
                 double m3_seconds, const char* paper) {
    laptop.AddRow({algo, system, util::StrFormat("%.2f", seconds),
                   util::StrFormat("%.2fx", seconds / m3_seconds), paper});
  };
  add("LR (L-BFGS x10)", "M3 (this machine)", m3_lr_seconds, m3_lr_seconds,
      "1.00x");
  add("LR (L-BFGS x10)", "Spark x8 (sim)", lr8.stats.simulated_seconds,
      m3_lr_seconds, "1.47x");
  add("LR (L-BFGS x10)", "Spark x4 (sim)", lr4.stats.simulated_seconds,
      m3_lr_seconds, "4.23x");
  add("k-means (k=5 x10)", "M3 (this machine)", m3_km_seconds, m3_km_seconds,
      "1.00x");
  add("k-means (k=5 x10)", "Spark x8 (sim)", km8.stats.simulated_seconds,
      m3_km_seconds, "1.38x");
  add("k-means (k=5 x10)", "Spark x4 (sim)", km4.stats.simulated_seconds,
      m3_km_seconds, "3.00x");
  laptop.Print(stdout, csv);
  std::printf("note: at MiB scale Spark's fixed per-job overheads dominate, "
              "inflating the ratios; see the paper-scale table.\n");

  // ---- Paper scale ---------------------------------------------------------
  // M3 side: PerfModel with the paper's machine (32 GB RAM, 1 GB/s SSD,
  // i7-4770K with 8 hyperthreads sharing the per-core constant).
  const uint64_t paper_bytes = 190ull << 30;
  constexpr double kPaperM3Threads = 8.0;
  PerfModelParams m3_params;
  m3_params.cpu_seconds_per_byte = cpu_seconds_per_byte / kPaperM3Threads;
  m3_params.disk_read_bytes_per_sec = 1e9;
  m3_params.ram_bytes = 32ull << 30;
  const double m3_paper_lr = PerfModel(m3_params).PredictRun(
      paper_bytes, lr_stats.function_evaluations);
  m3_params.cpu_seconds_per_byte = km_cpu_seconds_per_byte / kPaperM3Threads;
  const double m3_paper_km = PerfModel(m3_params).PredictRun(
      paper_bytes, km_result.value().iterations);

  // Spark side: the full-size fleets. Partition counts follow the config;
  // simulated stage costs are linear in bytes so we evaluate the cost
  // model directly on synthetic partitions of the paper-size dataset.
  auto spark_paper = [&](size_t instances, double cpu_cost, size_t passes,
                         uint64_t per_pass_result_bytes) {
    cluster::ClusterConfig config =
        PaperInstanceConfig(instances, cpu_cost);  // true 30 GB instances
    cluster::StageCostModel model(config);
    const uint64_t rows = paper_bytes / (784 * sizeof(double));
    auto partitions = cluster::MakePartitions(
        static_cast<size_t>(rows), config.TotalPartitions(),
        config.num_instances,
        static_cast<size_t>(config.CacheCapacityBytes() /
                            (784 * sizeof(double))));
    cluster::JobStats total;
    for (size_t pass = 0; pass < passes; ++pass) {
      cluster::JobStats job;
      job.Accumulate(model.Broadcast(per_pass_result_bytes));
      job.Accumulate(
          model.StageCost(partitions, 784 * sizeof(double), pass == 0));
      job.Accumulate(model.TreeAggregate(per_pass_result_bytes));
      total.Accumulate(job);
    }
    return total;
  };
  const uint64_t lr_result_bytes = (784 + 2) * sizeof(double);
  const uint64_t km_result_bytes = 5 * 784 * sizeof(double) + 5 * 8;
  auto lr4_paper = spark_paper(4, cpu_seconds_per_byte,
                               lr_stats.function_evaluations,
                               lr_result_bytes);
  auto lr8_paper = spark_paper(8, cpu_seconds_per_byte,
                               lr_stats.function_evaluations,
                               lr_result_bytes);
  auto km4_paper = spark_paper(4, km_cpu_seconds_per_byte,
                               km_result.value().iterations, km_result_bytes);
  auto km8_paper = spark_paper(8, km_cpu_seconds_per_byte,
                               km_result.value().iterations, km_result_bytes);

  std::printf("\n-- paper scale (190 GB dataset, paper hardware on both "
              "sides) --\n");
  util::TablePrinter paper({"algorithm", "system", "predicted_s", "vs_M3",
                            "paper_s", "paper_vs_M3"});
  auto addp = [&](const char* algo, const char* system, double seconds,
                  double m3_seconds, const char* paper_s,
                  const char* paper_ratio) {
    paper.AddRow({algo, system, util::StrFormat("%.0f", seconds),
                  util::StrFormat("%.2fx", seconds / m3_seconds), paper_s,
                  paper_ratio});
  };
  addp("LR (L-BFGS x10)", "M3 (one PC)", m3_paper_lr, m3_paper_lr, "1950",
       "1.00x");
  addp("LR (L-BFGS x10)", "Spark x8", lr8_paper.simulated_seconds,
       m3_paper_lr, "2864", "1.47x");
  addp("LR (L-BFGS x10)", "Spark x4", lr4_paper.simulated_seconds,
       m3_paper_lr, "8256", "4.23x");
  addp("k-means (k=5 x10)", "M3 (one PC)", m3_paper_km, m3_paper_km, "1164",
       "1.00x");
  addp("k-means (k=5 x10)", "Spark x8", km8_paper.simulated_seconds,
       m3_paper_km, "1604", "1.38x");
  addp("k-means (k=5 x10)", "Spark x4", km4_paper.simulated_seconds,
       m3_paper_km, "3491", "3.00x");
  paper.Print(stdout, csv);
  std::printf("shape check: ordering must be M3 <= Spark x8 < Spark x4 for "
              "both algorithms.\n");

  M3_IGNORE_STATUS(io::RemoveFile(path), "best-effort scratch cleanup");
  return 0;
}

}  // namespace
}  // namespace m3::bench

int main(int argc, char** argv) { return m3::bench::Run(argc, argv); }
