// Ablation on the Fig. 1b baseline: where does the cluster actually beat
// one memory-mapped machine?
//
// The paper notes "certainly, using more Spark instances will increase
// speed, but that may also incur additional overhead". This bench sweeps
// the instance count at paper-scale parameters and locates the crossover
// against M3, then shows how sensitive the 4-vs-8-instance gap is to the
// per-record overhead and the spill bandwidth — the two calibrated
// constants of the simulator.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/partition.h"
#include "cluster/sim_clock.h"
#include "cluster/spark_cluster.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace m3::bench {
namespace {

/// Simulated total for `passes` jobs over a paper-scale dataset.
double SimulatedRun(const cluster::ClusterConfig& config, uint64_t bytes,
                    size_t passes, uint64_t result_bytes) {
  cluster::StageCostModel model(config);
  const uint64_t row_bytes = 784 * sizeof(double);
  const uint64_t rows = bytes / row_bytes;
  auto partitions = cluster::MakePartitions(
      static_cast<size_t>(rows), config.TotalPartitions(),
      config.num_instances,
      static_cast<size_t>(config.CacheCapacityBytes() / row_bytes));
  cluster::JobStats total;
  for (size_t pass = 0; pass < passes; ++pass) {
    total.Accumulate(model.Broadcast(result_bytes));
    total.Accumulate(model.StageCost(partitions, row_bytes, pass == 0));
    total.Accumulate(model.TreeAggregate(result_bytes));
  }
  return total.simulated_seconds;
}

int Run(int argc, char** argv) {
  double cpu_per_core = 4e-10;  // ~2.5 GB/s/core native LR gradient
  int64_t passes = 12;
  bool csv = false;
  std::string trace;
  util::FlagParser flags("Spark-simulator sensitivity & crossover sweep");
  flags.AddDouble("cpu_per_core", &cpu_per_core,
                  "native CPU seconds per byte per core");
  flags.AddInt64("passes", &passes, "data passes (L-BFGS evaluations)");
  flags.AddBool("csv", &csv, "emit CSV");
  flags.AddString("trace", &trace,
                  "write a Chrome trace-event JSON of the run to this path");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    return UsageError(flags, argv[0], st.ToString());
  }
  if (flags.help_requested()) {
    return 0;
  }
  if (!ValidateBenchFlags(flags, argv[0], {{"passes", passes}},
                          {}, &trace)) {
    return 1;
  }
  if (cpu_per_core <= 0) {
    return UsageError(flags, argv[0], "--cpu_per_core must be positive");
  }

  PrintPreamble("Spark baseline sensitivity (paper-scale, analytic)");
  TraceSession trace_session(trace);
  const uint64_t dataset = 190ull << 30;

  // M3 reference: IO-bound out-of-core pass on the paper machine.
  PerfModelParams m3_params;
  m3_params.cpu_seconds_per_byte = cpu_per_core / 8.0;  // 8 threads
  m3_params.disk_read_bytes_per_sec = 1e9;
  m3_params.ram_bytes = 32ull << 30;
  const double m3_seconds = PerfModel(m3_params).PredictRun(
      dataset, static_cast<size_t>(passes));
  std::printf("M3 reference: %.0f s for %lld passes over 190 GB\n\n",
              m3_seconds, static_cast<long long>(passes));

  // --- Instance-count sweep: the crossover. -------------------------------
  const uint64_t result_bytes = (784 + 2) * sizeof(double);
  util::TablePrinter sweep({"instances", "cluster_ram", "cached",
                            "simulated_s", "vs_M3"});
  for (size_t instances : {2ul, 4ul, 6ul, 8ul, 12ul, 16ul, 32ul}) {
    cluster::ClusterConfig config;
    config.num_instances = instances;
    config.local_cpu_seconds_per_byte = cpu_per_core;
    const double seconds = SimulatedRun(config, dataset,
                                        static_cast<size_t>(passes),
                                        result_bytes);
    const bool cached = config.CacheCapacityBytes() >= dataset;
    sweep.AddRow({util::StrFormat("%zu", instances),
                  util::HumanBytes(config.instance_ram_bytes * instances),
                  cached ? "yes" : "spills",
                  util::StrFormat("%.0f", seconds),
                  util::StrFormat("%.2fx", seconds / m3_seconds)});
  }
  sweep.Print(stdout, csv);
  std::printf("\nexpectation: the cluster needs enough instances to cache "
              "the dataset before it can approach one mmap'd PC; the paper "
              "observed the crossover near 8 instances.\n");

  // --- Record-overhead sensitivity at 8 instances. -------------------------
  std::printf("\n-- per-record overhead sensitivity (8 instances) --\n");
  util::TablePrinter record({"record_ovh_s_per_B", "per_vCPU_MB_s",
                             "simulated_s", "vs_M3"});
  for (double overhead : {1e-8, 2.5e-8, 5e-8, 1e-7, 2e-7}) {
    cluster::ClusterConfig config;
    config.num_instances = 8;
    config.local_cpu_seconds_per_byte = cpu_per_core;
    config.record_overhead_seconds_per_byte = overhead;
    const double seconds = SimulatedRun(config, dataset,
                                        static_cast<size_t>(passes),
                                        result_bytes);
    record.AddRow({util::StrFormat("%.1e", overhead),
                   util::StrFormat("%.1f", 1.0 / overhead / 1e6),
                   util::StrFormat("%.0f", seconds),
                   util::StrFormat("%.2fx", seconds / m3_seconds)});
  }
  record.Print(stdout, csv);

  // --- Spill-bandwidth sensitivity at 4 instances. --------------------------
  std::printf("\n-- spill re-read bandwidth sensitivity (4 instances) --\n");
  util::TablePrinter spill({"spill_MB_s", "simulated_s", "vs_M3"});
  for (double bandwidth : {20e6, 40e6, 80e6, 160e6, 320e6}) {
    cluster::ClusterConfig config;
    config.num_instances = 4;
    config.local_cpu_seconds_per_byte = cpu_per_core;
    config.spill_read_bytes_per_sec = bandwidth;
    const double seconds = SimulatedRun(config, dataset,
                                        static_cast<size_t>(passes),
                                        result_bytes);
    spill.AddRow({util::StrFormat("%.0f", bandwidth / 1e6),
                  util::StrFormat("%.0f", seconds),
                  util::StrFormat("%.2fx", seconds / m3_seconds)});
  }
  spill.Print(stdout, csv);
  return 0;
}

}  // namespace
}  // namespace m3::bench

int main(int argc, char** argv) { return m3::bench::Run(argc, argv); }
